package conv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"znn/internal/tensor"
)

const tol = 1e-9

// randGeom draws a random (image, kernel, sparsity) triple with the dilated
// kernel guaranteed to fit inside the image.
func randGeom(r *rand.Rand) (img, ker *tensor.Tensor, sp tensor.Sparsity) {
	k := tensor.Shape{X: 1 + r.Intn(3), Y: 1 + r.Intn(3), Z: 1 + r.Intn(3)}
	sp = tensor.Sparsity{X: 1 + r.Intn(2), Y: 1 + r.Intn(2), Z: 1 + r.Intn(2)}
	in := tensor.Shape{
		X: sp.X*(k.X-1) + 1 + r.Intn(6),
		Y: sp.Y*(k.Y-1) + 1 + r.Intn(6),
		Z: sp.Z*(k.Z-1) + 1 + r.Intn(6),
	}
	img = tensor.RandomUniform(r, in, -1, 1)
	ker = tensor.RandomUniform(r, k, -1, 1)
	return img, ker, sp
}

func TestValidDirectKnownValues(t *testing.T) {
	// 1D-style: x = [1,2,3,4], w = [1,10]; true convolution valid:
	// y[i] = x[i+1]*w[0] + x[i]*w[1] = [12, 23, 34] with w=[w0,w1]=[1,10]:
	// y[i] = x[i+1]*1 + x[i]*10.
	x := tensor.FromSlice(tensor.S3(4, 1, 1), 1, 2, 3, 4)
	w := tensor.FromSlice(tensor.S3(2, 1, 1), 1, 10)
	got := ValidDirect(x, w, tensor.Dense())
	want := tensor.FromSlice(tensor.S3(3, 1, 1), 12, 23, 34)
	if !got.ApproxEqual(want, tol) {
		t.Errorf("ValidDirect = %v, want %v", got.Data, want.Data)
	}
}

func TestFullDirectKnownValues(t *testing.T) {
	// Full: y[m] = Σ x[m−a]w[a] → [1*1, 2+10, 3+20, 4+30, 40].
	x := tensor.FromSlice(tensor.S3(4, 1, 1), 1, 2, 3, 4)
	w := tensor.FromSlice(tensor.S3(2, 1, 1), 1, 10)
	got := FullDirect(x, w, tensor.Dense())
	want := tensor.FromSlice(tensor.S3(5, 1, 1), 1, 12, 23, 34, 40)
	if !got.ApproxEqual(want, tol) {
		t.Errorf("FullDirect = %v, want %v", got.Data, want.Data)
	}
}

func TestSparseValidKnownValues(t *testing.T) {
	// Sparsity 2, k=2: y[i] = x[i+2]·w0 + x[i]·w1, size 5−2 = 3.
	x := tensor.FromSlice(tensor.S3(5, 1, 1), 1, 2, 3, 4, 5)
	w := tensor.FromSlice(tensor.S3(2, 1, 1), 1, 10)
	got := ValidDirect(x, w, tensor.Sparsity{X: 2, Y: 1, Z: 1})
	want := tensor.FromSlice(tensor.S3(3, 1, 1), 13, 24, 35)
	if !got.ApproxEqual(want, tol) {
		t.Errorf("sparse ValidDirect = %v, want %v", got.Data, want.Data)
	}
}

func TestIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := tensor.RandomUniform(rng, tensor.Cube(6), -1, 1)
	one := tensor.FromSlice(tensor.S3(1, 1, 1), 1)
	if got := ValidDirect(img, one, tensor.Dense()); !got.ApproxEqual(img, tol) {
		t.Error("valid convolution with identity kernel is not identity")
	}
	if got := FullDirect(img, one, tensor.Dense()); !got.ApproxEqual(img, tol) {
		t.Error("full convolution with identity kernel is not identity")
	}
	if got := ValidFFT(img, one, tensor.Dense()); !got.ApproxEqual(img, 1e-10) {
		t.Error("FFT valid convolution with identity kernel is not identity")
	}
}

func TestDirectMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		img, ker, sp := randGeom(rng)
		if d := ValidDirect(img, ker, sp).MaxAbsDiff(NaiveValid(img, ker, sp)); d > tol {
			t.Fatalf("trial %d: ValidDirect differs from naive by %g", trial, d)
		}
		if d := FullDirect(img, ker, sp).MaxAbsDiff(NaiveFull(img, ker, sp)); d > tol {
			t.Fatalf("trial %d: FullDirect differs from naive by %g", trial, d)
		}
	}
}

func TestFFTMatchesDirectValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img, ker, sp := randGeom(r)
		d := ValidFFT(img, ker, sp).MaxAbsDiff(ValidDirect(img, ker, sp))
		return d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFFTMatchesDirectFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img, ker, sp := randGeom(r)
		d := FullFFT(img, ker, sp).MaxAbsDiff(FullDirect(img, ker, sp))
		return d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestConvolutionIsCommutativeInFull(t *testing.T) {
	// Full convolution is symmetric in its operands.
	rng := rand.New(rand.NewSource(5))
	a := tensor.RandomUniform(rng, tensor.S3(4, 3, 2), -1, 1)
	b := tensor.RandomUniform(rng, tensor.S3(2, 3, 4), -1, 1)
	ab := FullDirect(a, b, tensor.Dense())
	ba := FullDirect(b, a, tensor.Dense())
	if d := ab.MaxAbsDiff(ba); d > tol {
		t.Errorf("full convolution not commutative: %g", d)
	}
}

func TestLinearityInKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	img := tensor.RandomUniform(rng, tensor.Cube(7), -1, 1)
	k1 := tensor.RandomUniform(rng, tensor.Cube(3), -1, 1)
	k2 := tensor.RandomUniform(rng, tensor.Cube(3), -1, 1)
	ksum := k1.Clone()
	ksum.Add(k2)
	lhs := ValidDirect(img, ksum, tensor.Dense())
	rhs := ValidDirect(img, k1, tensor.Dense())
	rhs.Add(ValidDirect(img, k2, tensor.Dense()))
	if d := lhs.MaxAbsDiff(rhs); d > tol {
		t.Errorf("convolution not linear in kernel: %g", d)
	}
}

// The adjoint identity that makes backprop correct:
// ⟨valid(x,w), u⟩ == ⟨x, full(u, reflect(w))⟩ for all u.
func TestBackwardIsAdjointOfForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img, ker, sp := randGeom(r)
		u := tensor.RandomUniform(r, img.S.ValidConv(ker.S, sp), -1, 1)
		lhs := ValidDirect(img, ker, sp).Dot(u)
		rhs := img.Dot(BackwardDirect(u, ker, sp))
		d := lhs - rhs
		if d < 0 {
			d = -d
		}
		return d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// The kernel-gradient identity: d/dw ⟨valid(x,w), u⟩ == KernelGrad(x, u),
// verified against the definition via linearity: grad[a] must equal
// ⟨valid(x, δ_a), u⟩ for every basis kernel δ_a.
func TestKernelGradMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		img, ker, sp := randGeom(rng)
		u := tensor.RandomUniform(rng, img.S.ValidConv(ker.S, sp), -1, 1)
		g := KernelGradDirect(img, u, ker.S, sp)
		for i := range ker.Data {
			basis := tensor.New(ker.S)
			basis.Data[i] = 1
			want := ValidDirect(img, basis, sp).Dot(u)
			if d := g.Data[i] - want; d > tol || d < -tol {
				t.Fatalf("trial %d: kernel grad[%d] = %g, want %g", trial, i, g.Data[i], want)
			}
		}
	}
}

func TestTransformerForwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		img, ker, sp := randGeom(rng)
		for _, method := range []Method{Direct, FFT} {
			tr := NewTransformer(img.S, ker.S, sp, method, false, nil)
			got := tr.Forward(img, ker, nil)
			want := ValidDirect(img, ker, sp)
			if d := got.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("trial %d method %v: forward differs by %g", trial, method, d)
			}
		}
	}
}

func TestTransformerBackwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		img, ker, sp := randGeom(rng)
		bwd := tensor.RandomUniform(rng, img.S.ValidConv(ker.S, sp), -1, 1)
		want := BackwardDirect(bwd, ker, sp)
		for _, method := range []Method{Direct, FFT} {
			tr := NewTransformer(img.S, ker.S, sp, method, false, nil)
			got := tr.Backward(bwd, ker, nil)
			if d := got.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("trial %d method %v: backward differs by %g", trial, method, d)
			}
		}
	}
}

func TestTransformerKernelGradMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		img, ker, sp := randGeom(rng)
		bwd := tensor.RandomUniform(rng, img.S.ValidConv(ker.S, sp), -1, 1)
		want := KernelGradDirect(img, bwd, ker.S, sp)
		for _, memo := range []bool{false, true} {
			tr := NewTransformer(img.S, ker.S, sp, FFT, memo, nil)
			if memo {
				// Populate the memo slots the way a round would.
				tr.Forward(img, ker, nil)
				tr.Backward(bwd, ker, nil)
				if !tr.HasMemoizedSpectra() {
					t.Fatal("memo slots not populated after forward+backward")
				}
			}
			got := tr.KernelGrad(img, bwd)
			if d := got.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("trial %d memo=%v: kernel grad differs by %g", trial, memo, d)
			}
			if memo && tr.HasMemoizedSpectra() {
				t.Error("memo slots not consumed by KernelGrad")
			}
		}
	}
}

func TestTransformerMemoizationCountsFFTs(t *testing.T) {
	// With memoization: fwd = img FFT + kernel FFT + 1 inverse;
	// bwd = grad FFT + 1 inverse (kernel spectrum reused);
	// update = 1 inverse only (both spectra memoized).
	rng := rand.New(rand.NewSource(12))
	img := tensor.RandomUniform(rng, tensor.Cube(8), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(3), -1, 1)
	bwd := tensor.RandomUniform(rng, tensor.Cube(6), -1, 1)
	var c Counters
	tr := NewTransformer(img.S, ker.S, tensor.Dense(), FFT, true, &c)

	tr.Forward(img, ker, nil)
	s1 := c.Snapshot()
	if s1.FFTs != 2 || s1.InverseFFTs != 1 {
		t.Errorf("forward: %d FFTs %d inverses, want 2 and 1", s1.FFTs, s1.InverseFFTs)
	}

	tr.Backward(bwd, ker, nil)
	s2 := c.Snapshot().Sub(s1)
	if s2.FFTs != 1 || s2.InverseFFTs != 1 {
		t.Errorf("backward: %d FFTs %d inverses, want 1 and 1 (kernel reused)", s2.FFTs, s2.InverseFFTs)
	}

	tr.KernelGrad(img, bwd)
	s3 := c.Snapshot().Sub(s2.addBack(s1))
	if s3.FFTs != 0 || s3.InverseFFTs != 1 {
		t.Errorf("update: %d FFTs %d inverses, want 0 and 1 (both spectra memoized)", s3.FFTs, s3.InverseFFTs)
	}

	// Without memoization the update must recompute both forward FFTs.
	var c2 Counters
	tr2 := NewTransformer(img.S, ker.S, tensor.Dense(), FFT, false, &c2)
	tr2.Forward(img, ker, nil)
	tr2.Backward(bwd, ker, nil)
	before := c2.Snapshot()
	tr2.KernelGrad(img, bwd)
	d := c2.Snapshot().Sub(before)
	if d.FFTs != 2 || d.InverseFFTs != 1 {
		t.Errorf("unmemoized update: %d FFTs %d inverses, want 2 and 1", d.FFTs, d.InverseFFTs)
	}
}

// addBack restores a snapshot offset for sequential diffing in the test
// above.
func (s Snapshot) addBack(t Snapshot) Snapshot {
	return Snapshot{
		FFTs:        s.FFTs + t.FFTs,
		InverseFFTs: s.InverseFFTs + t.InverseFFTs,
		FFTFlops:    s.FFTFlops + t.FFTFlops,
		MulVolume:   s.MulVolume + t.MulVolume,
		ReflectOps:  s.ReflectOps + t.ReflectOps,
		DirectFlops: s.DirectFlops + t.DirectFlops,
	}
}

func TestKernelInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	img := tensor.RandomUniform(rng, tensor.Cube(6), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(3), -1, 1)
	tr := NewTransformer(img.S, ker.S, tensor.Dense(), FFT, false, nil)
	out1 := tr.Forward(img, ker, nil)

	// Changing the kernel without invalidation returns stale results.
	ker2 := ker.Clone()
	ker2.Scale(2)
	stale := tr.Forward(img, ker2, nil)
	if stale.MaxAbsDiff(out1) > tol {
		t.Error("kernel spectrum was not cached (expected stale result)")
	}
	// After invalidation the new kernel takes effect.
	tr.InvalidateKernel()
	fresh := tr.Forward(img, ker2, nil)
	want := out1.Clone()
	want.Scale(2)
	if d := fresh.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("invalidated forward differs by %g", d)
	}
}

func TestSpectrumCacheSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	img := tensor.RandomUniform(rng, tensor.Cube(8), -1, 1)
	var sc SpectrumCache
	sc.Reset(img)
	var c Counters
	m := transformShape(img.S, tensor.Cube(3), tensor.Dense())
	a := sc.Get(m, true, PrecF64, &c)
	b := sc.Get(m, true, PrecF64, &c)
	if &a.C128[0] != &b.C128[0] {
		t.Error("SpectrumCache.Get returned distinct buffers for same shape")
	}
	if c.Snapshot().FFTs != 1 {
		t.Errorf("FFT count = %d, want 1 (cached)", c.Snapshot().FFTs)
	}
	sc.Reset(img)
	_ = sc.Get(m, true, PrecF64, &c)
	if c.Snapshot().FFTs != 2 {
		t.Errorf("FFT count after Reset = %d, want 2", c.Snapshot().FFTs)
	}
}

func TestSpectrumCacheGetBeforeResetPanics(t *testing.T) {
	var sc SpectrumCache
	defer func() {
		if recover() == nil {
			t.Error("Get before Reset did not panic")
		}
	}()
	sc.Get(tensor.Cube(4), true, PrecF64, nil)
}

func TestTransformerForwardUsesSharedSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	img := tensor.RandomUniform(rng, tensor.Cube(8), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(3), -1, 1)
	var c Counters
	tr := NewTransformer(img.S, ker.S, tensor.Dense(), FFT, false, &c)
	var sc SpectrumCache
	sc.Reset(img)
	want := ValidDirect(img, ker, tensor.Dense())
	got := tr.Forward(img, ker, &sc)
	if d := got.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("shared-spectrum forward differs by %g", d)
	}
	// Second edge with the same input: image FFT must not be recomputed.
	tr2 := NewTransformer(img.S, ker.S, tensor.Dense(), FFT, false, &c)
	before := c.Snapshot().FFTs
	tr2.Forward(img, ker, &sc)
	after := c.Snapshot().FFTs
	if after-before != 1 { // only the kernel FFT
		t.Errorf("second edge performed %d FFTs, want 1 (shared image spectrum)", after-before)
	}
}

func TestShapeValidationPanics(t *testing.T) {
	tr := NewTransformer(tensor.Cube(6), tensor.Cube(3), tensor.Dense(), Direct, false, nil)
	cases := map[string]func(){
		"fwd wrong img": func() { tr.Forward(tensor.New(tensor.Cube(5)), tensor.New(tensor.Cube(3)), nil) },
		"fwd wrong ker": func() { tr.Forward(tensor.New(tensor.Cube(6)), tensor.New(tensor.Cube(2)), nil) },
		"bwd wrong":     func() { tr.Backward(tensor.New(tensor.Cube(5)), tensor.New(tensor.Cube(3)), nil) },
		"grad wrong":    func() { tr.KernelGrad(tensor.New(tensor.Cube(6)), tensor.New(tensor.Cube(5))) },
		"kernel too big": func() {
			NewTransformer(tensor.Cube(2), tensor.Cube(3), tensor.Dense(), Direct, false, nil)
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAutotunePolicies(t *testing.T) {
	smallK := LayerGeom{In: tensor.Cube(12), Kernel: tensor.Cube(2), Sp: tensor.Dense(), F: 1, FPrime: 1}
	bigK := LayerGeom{In: tensor.Cube(40), Kernel: tensor.Cube(11), Sp: tensor.Dense(), F: 10, FPrime: 10}

	var force Autotuner
	force.Policy = TuneForceDirect
	if force.Choose(bigK) != Direct {
		t.Error("TuneForceDirect did not force direct")
	}
	force.Policy = TuneForceFFT
	if force.Choose(smallK) != FFT {
		t.Error("TuneForceFFT did not force FFT")
	}

	var model Autotuner // zero value = TuneModel
	if model.Choose(smallK) != Direct {
		t.Error("model chose FFT for tiny kernel on single-edge layer")
	}
	if model.Choose(bigK) != FFT {
		t.Error("model chose direct for 9³ kernels on a wide layer")
	}
	// Cache: repeated calls return the same answer.
	if model.Choose(bigK) != FFT {
		t.Error("cached choice changed")
	}
}

func TestModelChoiceCrossoverGrowsWithKernel(t *testing.T) {
	// For a fixed wide layer, the model must switch from direct to FFT as
	// the kernel grows, and never switch back.
	prevFFT := false
	for k := 1; k <= 13; k += 2 {
		g := LayerGeom{In: tensor.Cube(40), Kernel: tensor.Cube(k), Sp: tensor.Dense(), F: 8, FPrime: 8}
		isFFT := modelChoice(g, PrecF64) == FFT
		if prevFFT && !isFFT {
			t.Errorf("model switched back to direct at k=%d", k)
		}
		prevFFT = prevFFT || isFFT
	}
	if !prevFFT {
		t.Error("model never chose FFT even for 13³ kernels on 40³ images")
	}
}

func TestMeasuredChoiceRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based autotune skipped in -short")
	}
	var a Autotuner
	a.Policy = TuneMeasure
	g := LayerGeom{In: tensor.Cube(10), Kernel: tensor.Cube(3), Sp: tensor.Dense(), F: 4, FPrime: 4}
	m := a.Choose(g)
	if m != Direct && m != FFT {
		t.Errorf("measured choice returned invalid method %v", m)
	}
	if a.Choose(g) != m {
		t.Error("measured choice not cached")
	}
}

func TestTwoDImagesAsDegenerateThirdDim(t *testing.T) {
	// 2D ConvNets are 3D with Z = 1 (paper Section VIII); the conv engines
	// must handle them exactly.
	rng := rand.New(rand.NewSource(16))
	img := tensor.RandomUniform(rng, tensor.S3(9, 9, 1), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.S3(3, 3, 1), -1, 1)
	d := ValidDirect(img, ker, tensor.Dense())
	f := ValidFFT(img, ker, tensor.Dense())
	if diff := d.MaxAbsDiff(f); diff > 1e-9 {
		t.Errorf("2D FFT conv differs from direct by %g", diff)
	}
	if d.S != tensor.S3(7, 7, 1) {
		t.Errorf("2D valid output shape = %v", d.S)
	}
}
