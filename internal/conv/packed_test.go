package conv

import (
	"math/rand"
	"testing"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// TestC2CMatchesPackedTransformer checks phase-by-phase parity between the
// packed (FFT) and legacy full-complex (FFTC2C) transformers and the
// direct reference, on randomized geometry including sparse kernels.
func TestC2CMatchesPackedTransformer(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		img, ker, sp := randGeom(rng)
		bwdShape := img.S.ValidConv(ker.S, sp)
		bwd := tensor.RandomUniform(rng, bwdShape, -1, 1)

		packed := NewTransformer(img.S, ker.S, sp, FFT, false, nil)
		c2c := NewTransformer(img.S, ker.S, sp, FFTC2C, false, nil)

		fp := packed.Forward(img, ker, nil)
		fc := c2c.Forward(img, ker, nil)
		fd := ValidDirect(img, ker, sp)
		if d := fp.MaxAbsDiff(fd); d > tol {
			t.Fatalf("trial %d: packed forward differs from direct by %g (img %v ker %v sp %v)",
				trial, d, img.S, ker.S, sp)
		}
		if d := fp.MaxAbsDiff(fc); d > tol {
			t.Fatalf("trial %d: packed forward differs from c2c by %g", trial, d)
		}

		bp := packed.Backward(bwd, ker, nil)
		bc := c2c.Backward(bwd, ker, nil)
		if d := bp.MaxAbsDiff(bc); d > tol {
			t.Fatalf("trial %d: packed backward differs from c2c by %g", trial, d)
		}

		gp := packed.KernelGrad(img, bwd)
		gc := c2c.KernelGrad(img, bwd)
		gd := KernelGradDirect(img, bwd, ker.S, sp)
		if d := gp.MaxAbsDiff(gd); d > tol {
			t.Fatalf("trial %d: packed kernel grad differs from direct by %g", trial, d)
		}
		if d := gp.MaxAbsDiff(gc); d > tol {
			t.Fatalf("trial %d: packed kernel grad differs from c2c by %g", trial, d)
		}
	}
}

// TestPackedReflectMatchesUnpacked verifies the packed conjugate-reflection
// identity against the unpacked reference: every packed entry of the
// reflected spectrum must equal the corresponding entry of the full
// reflected spectrum.
func TestPackedReflectMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, support tensor.Shape }{
		{tensor.S3(8, 6, 4), tensor.S3(3, 2, 2)},
		{tensor.S3(15, 5, 3), tensor.S3(4, 3, 1)}, // odd X
		{tensor.S3(7, 4, 2), tensor.S3(2, 2, 2)},  // Bluestein X
		{tensor.S3(6, 1, 1), tensor.S3(3, 1, 1)},
	}
	for _, c := range shapes {
		w := tensor.RandomUniform(rng, c.support, -1, 1)

		full := make([]complex128, c.m.Volume())
		fft.LoadReal(full, c.m, w)
		fft.NewPlan3(c.m).Forward(full)
		fullRefl := make([]complex128, c.m.Volume())
		reflectSpectrumInto(fullRefl, full, c.m, c.support)

		pk := make([]complex128, fft.PackedVolume(c.m))
		fft.NewPlan3R(c.m).Forward(pk, w)
		pkRefl := make([]complex128, len(pk))
		reflectSpectrumPackedInto(pkRefl, pk, c.m, c.support)

		ps := fft.PackedShape(c.m)
		for z := 0; z < ps.Z; z++ {
			for y := 0; y < ps.Y; y++ {
				for x := 0; x < ps.X; x++ {
					got := pkRefl[ps.Index(x, y, z)]
					want := fullRefl[c.m.Index(x, y, z)]
					if d := got - want; real(d)*real(d)+imag(d)*imag(d) > tol*tol {
						t.Fatalf("m %v support %v at (%d,%d,%d): packed reflect %v, want %v",
							c.m, c.support, x, y, z, got, want)
					}
				}
			}
		}
	}
}

// TestPackedReflectIsSpectrumOfReflection ties the packed identity to its
// meaning: reflecting in the spectral domain must equal transforming the
// spatially reflected, re-padded signal.
func TestPackedReflectIsSpectrumOfReflection(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := tensor.S3(10, 6, 5)
	support := tensor.S3(4, 3, 2)
	w := tensor.RandomUniform(rng, support, -1, 1)

	pk := make([]complex128, fft.PackedVolume(m))
	fft.NewPlan3R(m).Forward(pk, w)
	got := make([]complex128, len(pk))
	reflectSpectrumPackedInto(got, pk, m, support)

	want := make([]complex128, len(pk))
	fft.NewPlan3R(m).Forward(want, w.Reflect())

	for i := range got {
		if d := got[i] - want[i]; real(d)*real(d)+imag(d)*imag(d) > tol*tol {
			t.Fatalf("index %d: reflected spectrum %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPhaseTableCached(t *testing.T) {
	a := phaseTable(12, 4)
	b := phaseTable(12, 4)
	if &a[0] != &b[0] {
		t.Error("phaseTable rebuilt an already-cached table")
	}
	// (K−1) mod M collisions share one table.
	c := phaseTable(12, 16)
	if &a[0] != &c[0] {
		t.Error("phaseTable missed the (M, shift) cache key collapse")
	}
	if len(phaseTable(5, 3)) != 5 {
		t.Error("phaseTable length mismatch")
	}
}

// TestPackedSpectraHalvePoolFootprint is the pool-stats acceptance check:
// running the same convolution through the packed and the c2c transformers
// must roughly halve the peak bytes drawn from the spectra pool.
func TestPackedSpectraHalvePoolFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	img := tensor.RandomUniform(rng, tensor.Cube(24), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(5), -0.5, 0.5)
	bwd := tensor.RandomUniform(rng, img.S.ValidConv(ker.S, tensor.Dense()), -1, 1)

	peakOf := func(mth Method) int64 {
		tr := NewTransformer(img.S, ker.S, tensor.Dense(), mth, false, nil)
		mempool.Spectra.ResetPeak()
		base := mempool.Spectra.Stats().LiveBytes
		tr.Forward(img, ker, nil)
		tr.Backward(bwd, ker, nil)
		tr.KernelGrad(img, bwd)
		return mempool.Spectra.Stats().PeakLiveBytes - base
	}

	c2c := peakOf(FFTC2C)
	packed := peakOf(FFT)
	if packed <= 0 || c2c <= 0 {
		t.Fatalf("no pool traffic measured (packed %d, c2c %d)", packed, c2c)
	}
	if packed*2 > c2c {
		t.Errorf("packed peak pool bytes = %d, want ≤ half of c2c %d", packed, c2c)
	}
}

// TestValidFullFFTParityAtTransformShapeClasses pins ValidFFT/FullFFT
// against the direct reference at geometries engineered to produce even,
// odd and degenerate 5-smooth transform shapes (transformShape always
// returns 5-smooth sizes, so the odd r2c fallback is reached via e.g.
// 11+4 = 15), including sparse kernels.
func TestValidFullFFTParityAtTransformShapeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cases := []struct {
		in, k tensor.Shape
		sp    tensor.Sparsity
	}{
		{tensor.S3(6, 6, 6), tensor.S3(3, 3, 3), tensor.Dense()},                     // 8³ even
		{tensor.S3(11, 11, 11), tensor.S3(5, 5, 5), tensor.Dense()},                  // 15³ odd
		{tensor.S3(11, 6, 1), tensor.S3(5, 3, 1), tensor.Dense()},                    // mixed odd/even, 2D
		{tensor.S3(21, 3, 3), tensor.S3(3, 2, 2), tensor.Dense()},                    // 25·4·4 odd X
		{tensor.S3(7, 7, 7), tensor.S3(3, 3, 3), tensor.Uniform(2)},                  // sparse, 11→12 even
		{tensor.S3(13, 5, 5), tensor.S3(2, 2, 2), tensor.Sparsity{X: 2, Y: 1, Z: 1}}, // 15·6·6
	}
	for _, c := range cases {
		img := tensor.RandomUniform(rng, c.in, -1, 1)
		ker := tensor.RandomUniform(rng, c.k, -1, 1)
		m := transformShape(c.in, c.k, c.sp)
		if gv, gm := ValidFFT(img, ker, c.sp), ValidDirect(img, ker, c.sp); gv.MaxAbsDiff(gm) > tol {
			t.Errorf("ValidFFT in %v k %v sp %v (transform %v): differs from direct by %g",
				c.in, c.k, c.sp, m, gv.MaxAbsDiff(gm))
		}
		if gf, gm := FullFFT(img, ker, c.sp), FullDirect(img, ker, c.sp); gf.MaxAbsDiff(gm) > tol {
			t.Errorf("FullFFT in %v k %v sp %v (transform %v): differs from direct by %g",
				c.in, c.k, c.sp, m, gf.MaxAbsDiff(gm))
		}
	}
}
