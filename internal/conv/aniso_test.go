package conv

import (
	"math/rand"
	"testing"

	"znn/internal/tensor"
)

// Anisotropic geometries: non-cubic images, kernels, and sparsities in all
// combinations, for every method and phase.
func TestAnisotropicTransformer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	geoms := []struct {
		in tensor.Shape
		k  tensor.Shape
		sp tensor.Sparsity
	}{
		{tensor.S3(9, 5, 3), tensor.S3(3, 2, 1), tensor.Dense()},
		{tensor.S3(12, 4, 7), tensor.S3(2, 1, 3), tensor.Sparsity{X: 2, Y: 1, Z: 1}},
		{tensor.S3(8, 8, 1), tensor.S3(3, 3, 1), tensor.Sparsity{X: 1, Y: 2, Z: 1}}, // 2D
		{tensor.S3(5, 5, 5), tensor.S3(1, 1, 1), tensor.Uniform(2)},                 // 1³ kernel
		{tensor.S3(15, 3, 3), tensor.S3(4, 1, 1), tensor.Sparsity{X: 3, Y: 1, Z: 1}},
	}
	for gi, g := range geoms {
		img := tensor.RandomUniform(rng, g.in, -1, 1)
		ker := tensor.RandomUniform(rng, g.k, -1, 1)
		bwd := tensor.RandomUniform(rng, g.in.ValidConv(g.k, g.sp), -1, 1)

		wantF := ValidDirect(img, ker, g.sp)
		wantB := BackwardDirect(bwd, ker, g.sp)
		wantG := KernelGradDirect(img, bwd, g.k, g.sp)

		for _, method := range []Method{Direct, FFT} {
			for _, memo := range []bool{false, true} {
				tr := NewTransformer(g.in, g.k, g.sp, method, memo, nil)
				if d := tr.Forward(img, ker, nil).MaxAbsDiff(wantF); d > 1e-9 {
					t.Errorf("geom %d %v memo=%v: forward differs %g", gi, method, memo, d)
				}
				if d := tr.Backward(bwd, ker, nil).MaxAbsDiff(wantB); d > 1e-9 {
					t.Errorf("geom %d %v memo=%v: backward differs %g", gi, method, memo, d)
				}
				if d := tr.KernelGrad(img, bwd).MaxAbsDiff(wantG); d > 1e-9 {
					t.Errorf("geom %d %v memo=%v: kernel grad differs %g", gi, method, memo, d)
				}
			}
		}
	}
}

// Kernel as large as the image: valid output is a single voxel.
func TestKernelEqualsImage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := tensor.RandomUniform(rng, tensor.Cube(4), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(4), -1, 1)
	want := img.Dot(ker.Reflect())
	for _, method := range []Method{Direct, FFT} {
		tr := NewTransformer(img.S, ker.S, tensor.Dense(), method, false, nil)
		out := tr.Forward(img, ker, nil)
		if out.S != tensor.Cube(1) {
			t.Fatalf("%v: output shape %v", method, out.S)
		}
		if d := out.Data[0] - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("%v: single-voxel output %g, want %g", method, out.Data[0], want)
		}
	}
}

// Concurrent transformers sharing one SpectrumCache must be safe and
// correct (this is exactly what the engine does for a layer's edges).
func TestConcurrentEdgesOneCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := tensor.RandomUniform(rng, tensor.Cube(10), -1, 1)
	var sc SpectrumCache
	sc.Reset(img)
	const edges = 8
	kers := make([]*tensor.Tensor, edges)
	wants := make([]*tensor.Tensor, edges)
	for i := range kers {
		kers[i] = tensor.RandomUniform(rng, tensor.Cube(3), -1, 1)
		wants[i] = ValidDirect(img, kers[i], tensor.Dense())
	}
	done := make(chan error, edges)
	for i := 0; i < edges; i++ {
		go func(i int) {
			tr := NewTransformer(img.S, tensor.Cube(3), tensor.Dense(), FFT, false, nil)
			out := tr.Forward(img, kers[i], &sc)
			if d := out.MaxAbsDiff(wants[i]); d > 1e-9 {
				done <- errMismatch{d}
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < edges; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatch struct{ d float64 }

func (e errMismatch) Error() string { return "concurrent edge result mismatch" }
