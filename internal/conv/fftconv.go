package conv

import (
	"fmt"
	"sync"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// transformShape returns the common FFT shape used for every phase of a
// convolution edge with input image shape n, kernel shape k and sparsity s:
// the 5-smooth shape covering the forward full convolution, n + s(k−1).
//
// A single shape per edge is what makes memoization sound: the forward
// image FFT is reusable in the update, and the backward-gradient FFT is
// reusable in the update, because all products are taken at the same
// transform size. The required output regions of each phase are alias-free
// at this size (see package doc for the index ranges).
func transformShape(n, k tensor.Shape, sp tensor.Sparsity) tensor.Shape {
	return fft.GoodShape(n.FullConv(k, sp))
}

// fftOf loads t into a pooled Hermitian-packed buffer for transform shape m
// and computes its packed spectrum. Callers release the buffer with
// mempool.Spectra.Put.
func fftOf(t *tensor.Tensor, m tensor.Shape, c *Counters) []complex128 {
	buf := mempool.Spectra.Get(fft.PackedVolume(m))
	fft.NewPlan3R(m).Forward(buf, t)
	c.addFFT(m, true, false)
	return buf
}

// ValidFFT computes the valid sparse convolution via packed real FFTs: both
// operands (kernel dilated) transform to Hermitian-packed spectra at the
// transform shape, multiply pointwise, invert, and crop the valid region at
// offset s(k−1).
func ValidFFT(img, ker *tensor.Tensor, sp tensor.Sparsity) *tensor.Tensor {
	checkConvArgs(img, ker, sp)
	os := img.S.ValidConv(ker.S, sp)
	if !os.Valid() {
		panic(fmt.Sprintf("conv: kernel %v (sparsity %v) does not fit in image %v",
			ker.S, sp, img.S))
	}
	m := transformShape(img.S, ker.S, sp)
	imgF := fftOf(img, m, nil)
	kerF := fftOf(ker.Dilate(sp), m, nil)
	fft.MulInto(imgF, imgF, kerF)
	mempool.Spectra.Put(kerF)
	out := tensor.New(os)
	fft.NewPlan3R(m).Inverse(out, imgF, sp.X*(ker.S.X-1), sp.Y*(ker.S.Y-1), sp.Z*(ker.S.Z-1))
	mempool.Spectra.Put(imgF)
	return out
}

// FullFFT computes the full sparse convolution via packed real FFTs.
func FullFFT(img, ker *tensor.Tensor, sp tensor.Sparsity) *tensor.Tensor {
	checkConvArgs(img, ker, sp)
	os := img.S.FullConv(ker.S, sp)
	m := fft.GoodShape(os)
	imgF := fftOf(img, m, nil)
	kerF := fftOf(ker.Dilate(sp), m, nil)
	fft.MulInto(imgF, imgF, kerF)
	mempool.Spectra.Put(kerF)
	out := tensor.New(os)
	fft.NewPlan3R(m).Inverse(out, imgF, 0, 0, 0)
	mempool.Spectra.Put(imgF)
	return out
}

// reflectSpectrumInto computes the spectrum of the reflected-and-re-padded
// signal from the spectrum of the original: for a real signal w with
// support [0, K−1] padded into M, the reflection w[K−1−t] has spectrum
// conj(W[m])·Π_d ω_d^{(K_d−1)·m_d}, a pointwise pass with no extra FFT.
// This is how the backward pass reuses the forward kernel FFT and the
// update reuses the forward image FFT (Table II, memoized column).
func reflectSpectrumInto[C fft.Complex](dst, src []C, m, support tensor.Shape) {
	if len(dst) != m.Volume() || len(src) != m.Volume() {
		panic("conv: reflectSpectrum buffer size mismatch")
	}
	px := phaseTableOf[C](m.X, support.X)
	py := phaseTableOf[C](m.Y, support.Y)
	pz := phaseTableOf[C](m.Z, support.Z)
	reflectLoop(dst, src, tensor.Shape{X: m.X, Y: m.Y, Z: m.Z}, px, py, pz)
}

// reflectSpectrumPackedInto is reflectSpectrumInto on Hermitian-packed
// spectra of logical transform shape m. The identity is pointwise at each
// frequency, so it applies verbatim over the packed index range
// kx = 0 .. X/2 — and the result stays Hermitian because the reflected
// signal is again real.
func reflectSpectrumPackedInto[C fft.Complex](dst, src []C, m, support tensor.Shape) {
	ps := fft.PackedShape(m)
	if len(dst) != ps.Volume() || len(src) != ps.Volume() {
		panic("conv: reflectSpectrumPacked buffer size mismatch")
	}
	px := phaseTableOf[C](m.X, support.X)
	py := phaseTableOf[C](m.Y, support.Y)
	pz := phaseTableOf[C](m.Z, support.Z)
	reflectLoop(dst, src, ps, px, py, pz)
}

// reflectLoop applies dst[i] = conj(src[i])·px[x]·py[y]·pz[z] over the
// iteration shape it (the packed or full spectrum shape; the phase tables
// are indexed by coordinate, so the loop is layout-agnostic). The complex64
// instantiation runs in explicit float32 component arithmetic to dodge the
// compiler's complex64-multiply promotion (see fft's kernels64).
func reflectLoop[C fft.Complex](dst, src []C, it tensor.Shape, px, py, pz []C) {
	if d64, ok := any(dst).([]complex64); ok {
		reflectLoop64(d64, any(src).([]complex64), it,
			any(px).([]complex64), any(py).([]complex64), any(pz).([]complex64))
		return
	}
	i := 0
	for z := 0; z < it.Z; z++ {
		for y := 0; y < it.Y; y++ {
			pyz := py[y] * pz[z]
			for x := 0; x < it.X; x++ {
				v := complex128(src[i])
				dst[i] = C(complex(real(v), -imag(v))) * (px[x] * pyz)
				i++
			}
		}
	}
}

// reflectLoop64 is the promotion-free complex64 reflection pass.
func reflectLoop64(dst, src []complex64, it tensor.Shape, px, py, pz []complex64) {
	i := 0
	for z := 0; z < it.Z; z++ {
		for y := 0; y < it.Y; y++ {
			a, b := py[y], pz[z]
			pyzR := real(a)*real(b) - imag(a)*imag(b)
			pyzI := real(a)*imag(b) + imag(a)*real(b)
			for x := 0; x < it.X; x++ {
				p := px[x]
				pr := real(p)*pyzR - imag(p)*pyzI
				pi := real(p)*pyzI + imag(p)*pyzR
				v := src[i]
				vr, vi := real(v), -imag(v)
				dst[i] = complex(vr*pr-vi*pi, vr*pi+vi*pr)
				i++
			}
		}
	}
}

// phaseKey identifies a cached phase table by length, shift and precision.
type phaseKey struct {
	m, shift int
	f32      bool
}

var (
	phaseMu    sync.Mutex
	phaseCache = map[phaseKey]any{} // []C
)

// phaseTableOf returns ω_M^{(K−1)·m} for m = 0..M−1 where ω_M = e^{−2πi/M},
// at coefficient type C. Tables are cached by (M, (K−1) mod M, precision):
// the reflection passes run on every backward and update phase, so
// rebuilding the table (and taking the Twiddle lock) per call showed up as
// per-round allocation churn. Tables are computed from the float64 twiddles
// and rounded once, so both precisions agree to float32 accuracy. Callers
// must not modify the returned slice.
func phaseTableOf[C fft.Complex](m, k int) []C {
	shift := (k - 1) % m
	var zero C
	_, f32 := any(zero).(complex64)
	key := phaseKey{m, shift, f32}
	phaseMu.Lock()
	defer phaseMu.Unlock()
	if tab, ok := phaseCache[key]; ok {
		return tab.([]C)
	}
	tab := make([]C, m)
	w := fft.Twiddle(m)
	for i := 0; i < m; i++ {
		tab[i] = C(w[(i*shift)%m])
	}
	phaseCache[key] = tab
	return tab
}

// phaseTable is phaseTableOf at complex128 (the historical name, used by
// tests).
func phaseTable(m, k int) []complex128 { return phaseTableOf[complex128](m, k) }
