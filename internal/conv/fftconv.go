package conv

import (
	"fmt"
	"sync"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// transformShape returns the common FFT shape used for every phase of a
// convolution edge with input image shape n, kernel shape k and sparsity s:
// the 5-smooth shape covering the forward full convolution, n + s(k−1).
//
// A single shape per edge is what makes memoization sound: the forward
// image FFT is reusable in the update, and the backward-gradient FFT is
// reusable in the update, because all products are taken at the same
// transform size. The required output regions of each phase are alias-free
// at this size (see package doc for the index ranges).
func transformShape(n, k tensor.Shape, sp tensor.Sparsity) tensor.Shape {
	return fft.GoodShape(n.FullConv(k, sp))
}

// fftOf loads t into a pooled Hermitian-packed buffer for transform shape m
// and computes its packed spectrum. Callers release the buffer with
// mempool.Spectra.Put.
func fftOf(t *tensor.Tensor, m tensor.Shape, c *Counters) []complex128 {
	buf := mempool.Spectra.Get(fft.PackedVolume(m))
	fft.NewPlan3R(m).Forward(buf, t)
	c.addFFT(m, true)
	return buf
}

// ValidFFT computes the valid sparse convolution via packed real FFTs: both
// operands (kernel dilated) transform to Hermitian-packed spectra at the
// transform shape, multiply pointwise, invert, and crop the valid region at
// offset s(k−1).
func ValidFFT(img, ker *tensor.Tensor, sp tensor.Sparsity) *tensor.Tensor {
	checkConvArgs(img, ker, sp)
	os := img.S.ValidConv(ker.S, sp)
	if !os.Valid() {
		panic(fmt.Sprintf("conv: kernel %v (sparsity %v) does not fit in image %v",
			ker.S, sp, img.S))
	}
	m := transformShape(img.S, ker.S, sp)
	imgF := fftOf(img, m, nil)
	kerF := fftOf(ker.Dilate(sp), m, nil)
	fft.MulInto(imgF, imgF, kerF)
	mempool.Spectra.Put(kerF)
	out := tensor.New(os)
	fft.NewPlan3R(m).Inverse(out, imgF, sp.X*(ker.S.X-1), sp.Y*(ker.S.Y-1), sp.Z*(ker.S.Z-1))
	mempool.Spectra.Put(imgF)
	return out
}

// FullFFT computes the full sparse convolution via packed real FFTs.
func FullFFT(img, ker *tensor.Tensor, sp tensor.Sparsity) *tensor.Tensor {
	checkConvArgs(img, ker, sp)
	os := img.S.FullConv(ker.S, sp)
	m := fft.GoodShape(os)
	imgF := fftOf(img, m, nil)
	kerF := fftOf(ker.Dilate(sp), m, nil)
	fft.MulInto(imgF, imgF, kerF)
	mempool.Spectra.Put(kerF)
	out := tensor.New(os)
	fft.NewPlan3R(m).Inverse(out, imgF, 0, 0, 0)
	mempool.Spectra.Put(imgF)
	return out
}

// reflectSpectrumInto computes the spectrum of the reflected-and-re-padded
// signal from the spectrum of the original: for a real signal w with
// support [0, K−1] padded into M, the reflection w[K−1−t] has spectrum
// conj(W[m])·Π_d ω_d^{(K_d−1)·m_d}, a pointwise pass with no extra FFT.
// This is how the backward pass reuses the forward kernel FFT and the
// update reuses the forward image FFT (Table II, memoized column).
func reflectSpectrumInto(dst, src []complex128, m, support tensor.Shape) {
	if len(dst) != m.Volume() || len(src) != m.Volume() {
		panic("conv: reflectSpectrum buffer size mismatch")
	}
	px := phaseTable(m.X, support.X)
	py := phaseTable(m.Y, support.Y)
	pz := phaseTable(m.Z, support.Z)
	i := 0
	for z := 0; z < m.Z; z++ {
		for y := 0; y < m.Y; y++ {
			pyz := py[y] * pz[z]
			for x := 0; x < m.X; x++ {
				v := src[i]
				dst[i] = complex(real(v), -imag(v)) * (px[x] * pyz)
				i++
			}
		}
	}
}

// reflectSpectrumPackedInto is reflectSpectrumInto on Hermitian-packed
// spectra of logical transform shape m. The identity is pointwise at each
// frequency, so it applies verbatim over the packed index range
// kx = 0 .. X/2 — and the result stays Hermitian because the reflected
// signal is again real.
func reflectSpectrumPackedInto(dst, src []complex128, m, support tensor.Shape) {
	ps := fft.PackedShape(m)
	if len(dst) != ps.Volume() || len(src) != ps.Volume() {
		panic("conv: reflectSpectrumPacked buffer size mismatch")
	}
	px := phaseTable(m.X, support.X)
	py := phaseTable(m.Y, support.Y)
	pz := phaseTable(m.Z, support.Z)
	i := 0
	for z := 0; z < ps.Z; z++ {
		for y := 0; y < ps.Y; y++ {
			pyz := py[y] * pz[z]
			for x := 0; x < ps.X; x++ {
				v := src[i]
				dst[i] = complex(real(v), -imag(v)) * (px[x] * pyz)
				i++
			}
		}
	}
}

var (
	phaseMu    sync.Mutex
	phaseCache = map[[2]int][]complex128{}
)

// phaseTable returns ω_M^{(K−1)·m} for m = 0..M−1 where ω_M = e^{−2πi/M}.
// Tables are cached by (M, (K−1) mod M): the reflection passes run on every
// backward and update phase, so rebuilding the table (and taking the
// Twiddle lock) per call showed up as per-round allocation churn. Callers
// must not modify the returned slice.
func phaseTable(m, k int) []complex128 {
	shift := (k - 1) % m
	key := [2]int{m, shift}
	phaseMu.Lock()
	defer phaseMu.Unlock()
	if tab, ok := phaseCache[key]; ok {
		return tab
	}
	tab := make([]complex128, m)
	w := fft.Twiddle(m)
	for i := 0; i < m; i++ {
		tab[i] = w[(i*shift)%m]
	}
	phaseCache[key] = tab
	return tab
}
