package conv

import (
	"fmt"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// transformShape returns the common FFT shape used for every phase of a
// convolution edge with input image shape n, kernel shape k and sparsity s:
// the 5-smooth shape covering the forward full convolution, n + s(k−1).
//
// A single shape per edge is what makes memoization sound: the forward
// image FFT is reusable in the update, and the backward-gradient FFT is
// reusable in the update, because all products are taken at the same
// transform size. The required output regions of each phase are alias-free
// at this size (see package doc for the index ranges).
func transformShape(n, k tensor.Shape, sp tensor.Sparsity) tensor.Shape {
	return fft.GoodShape(n.FullConv(k, sp))
}

// fftOf loads t into a pooled complex buffer of shape m and transforms it
// in place, returning the spectrum. Callers release the buffer with
// mempool.Spectra.Put.
func fftOf(t *tensor.Tensor, m tensor.Shape, c *Counters) []complex128 {
	buf := mempool.Spectra.Get(m.Volume())
	fft.LoadReal(buf, m, t)
	fft.NewPlan3(m).Forward(buf)
	c.addFFT(m)
	return buf
}

// ValidFFT computes the valid sparse convolution via the FFT: pad both
// operands (kernel dilated) to the transform shape, multiply pointwise,
// invert, and crop the valid region at offset s(k−1).
func ValidFFT(img, ker *tensor.Tensor, sp tensor.Sparsity) *tensor.Tensor {
	checkConvArgs(img, ker, sp)
	os := img.S.ValidConv(ker.S, sp)
	if !os.Valid() {
		panic(fmt.Sprintf("conv: kernel %v (sparsity %v) does not fit in image %v",
			ker.S, sp, img.S))
	}
	m := transformShape(img.S, ker.S, sp)
	imgF := fftOf(img, m, nil)
	kerF := fftOf(ker.Dilate(sp), m, nil)
	fft.MulInto(imgF, imgF, kerF)
	mempool.Spectra.Put(kerF)
	fft.NewPlan3(m).Inverse(imgF)
	out := tensor.New(os)
	fft.StoreReal(out, imgF, m, sp.X*(ker.S.X-1), sp.Y*(ker.S.Y-1), sp.Z*(ker.S.Z-1))
	mempool.Spectra.Put(imgF)
	return out
}

// FullFFT computes the full sparse convolution via the FFT.
func FullFFT(img, ker *tensor.Tensor, sp tensor.Sparsity) *tensor.Tensor {
	checkConvArgs(img, ker, sp)
	os := img.S.FullConv(ker.S, sp)
	m := fft.GoodShape(os)
	imgF := fftOf(img, m, nil)
	kerF := fftOf(ker.Dilate(sp), m, nil)
	fft.MulInto(imgF, imgF, kerF)
	mempool.Spectra.Put(kerF)
	fft.NewPlan3(m).Inverse(imgF)
	out := tensor.New(os)
	fft.StoreReal(out, imgF, m, 0, 0, 0)
	mempool.Spectra.Put(imgF)
	return out
}

// reflectSpectrumInto computes the spectrum of the reflected-and-re-padded
// signal from the spectrum of the original: for a real signal w with
// support [0, K−1] padded into M, the reflection w[K−1−t] has spectrum
// conj(W[m])·Π_d ω_d^{(K_d−1)·m_d}, a pointwise pass with no extra FFT.
// This is how the backward pass reuses the forward kernel FFT and the
// update reuses the forward image FFT (Table II, memoized column).
func reflectSpectrumInto(dst, src []complex128, m, support tensor.Shape) {
	if len(dst) != m.Volume() || len(src) != m.Volume() {
		panic("conv: reflectSpectrum buffer size mismatch")
	}
	px := phaseTable(m.X, support.X)
	py := phaseTable(m.Y, support.Y)
	pz := phaseTable(m.Z, support.Z)
	i := 0
	for z := 0; z < m.Z; z++ {
		for y := 0; y < m.Y; y++ {
			pyz := py[y] * pz[z]
			for x := 0; x < m.X; x++ {
				v := src[i]
				dst[i] = complex(real(v), -imag(v)) * (px[x] * pyz)
				i++
			}
		}
	}
}

// phaseTable returns ω_M^{(K−1)·m} for m = 0..M−1 where ω_M = e^{−2πi/M}.
func phaseTable(m, k int) []complex128 {
	tab := make([]complex128, m)
	w := fft.Twiddle(m)
	shift := (k - 1) % m
	for i := 0; i < m; i++ {
		tab[i] = w[(i*shift)%m]
	}
	return tab
}
