package conv

import (
	"math/rand"
	"testing"

	"znn/internal/mempool"
	"znn/internal/tensor"
)

// batchVolumes draws k random volumes of one shape.
func batchVolumes(r *rand.Rand, s tensor.Shape, k int) []*tensor.Tensor {
	vols := make([]*tensor.Tensor, k)
	for i := range vols {
		vols[i] = tensor.RandomUniform(r, s, -1, 1)
	}
	return vols
}

// TestForwardInferBatchMatchesSingle checks the batched sweep is
// bit-identical to per-volume ForwardInfer for every method and precision,
// with and without a shared batch spectrum cache.
func TestForwardInferBatchMatchesSingle(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	in := tensor.S3(9, 8, 7)
	ker := tensor.RandomUniform(r, tensor.Cube(3), -1, 1)
	const k = 4
	vols := batchVolumes(r, in, k)

	cases := []struct {
		name string
		mth  Method
		prec Precision
	}{
		{"direct", Direct, PrecF64},
		{"fft/f64", FFT, PrecF64},
		{"fft/f32", FFT, PrecF32},
		{"fft-c2c", FFTC2C, PrecF64},
	}
	for _, tc := range cases {
		tr := NewTransformerPrec(in, ker.S, tensor.Dense(), tc.mth, tc.prec, false, nil)
		want := make([]*tensor.Tensor, k)
		for i, v := range vols {
			want[i] = tr.ForwardInfer(v, ker, nil)
		}
		got := tr.ForwardInferBatch(vols, ker, nil)
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s: batched volume %d differs from single ForwardInfer (max |Δ| = %g)",
					tc.name, i, got[i].MaxAbsDiff(want[i]))
			}
		}
		var sc SpectrumCache
		sc.ResetBatch(vols)
		got = tr.ForwardInferBatch(vols, ker, &sc)
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s: cached batched volume %d differs from single ForwardInfer", tc.name, i)
			}
		}
	}
}

// TestForwardProductInferBatchMatchesForward checks the product sweep: one
// kernel-spectrum fetch feeding K products, each finished with one inverse
// transform, equals the plain forward output per volume.
func TestForwardProductInferBatchMatchesForward(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	in := tensor.S3(10, 9, 6)
	ker := tensor.RandomUniform(r, tensor.Cube(3), -1, 1)
	const k = 3
	vols := batchVolumes(r, in, k)

	for _, prec := range []Precision{PrecF64, PrecF32} {
		tr := NewTransformerPrec(in, ker.S, tensor.Dense(), FFT, prec, false, nil)
		var sc SpectrumCache
		sc.ResetBatch(vols)
		prods := tr.ForwardProductInferBatch(vols, ker, &sc)
		if len(prods) != k {
			t.Fatalf("prec %v: got %d products, want %d", prec, len(prods), k)
		}
		for i, prod := range prods {
			got := tr.FinishForward(prod)
			want := tr.ForwardInfer(vols[i], ker, nil)
			if !got.Equal(want) {
				t.Errorf("prec %v: finished product %d differs from ForwardInfer (max |Δ| = %g)",
					prec, i, got.MaxAbsDiff(want))
			}
		}
	}
}

// TestSpectrumCacheBatch checks the batch cache contract: GetBatch computes
// each volume's spectrum once, GetAt returns the same shared buffers, and
// a second GetBatch is pure cache hits.
func TestSpectrumCacheBatch(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	in := tensor.S3(8, 8, 8)
	const k = 3
	vols := batchVolumes(r, in, k)
	m := tensor.S3(10, 10, 10)

	var cnt Counters
	var sc SpectrumCache
	sc.ResetBatch(vols)
	specs := sc.GetBatch(m, true, PrecF64, &cnt)
	if len(specs) != k {
		t.Fatalf("GetBatch returned %d spectra, want %d", len(specs), k)
	}
	ffts := cnt.Snapshot().FFTs
	if ffts != k {
		t.Fatalf("GetBatch computed %d FFTs, want %d", ffts, k)
	}
	for i := range vols {
		got := sc.GetAt(i, m, true, PrecF64, &cnt)
		if &got.C128[0] != &specs[i].C128[0] {
			t.Fatalf("GetAt(%d) returned a different buffer than GetBatch", i)
		}
	}
	sc.GetBatch(m, true, PrecF64, &cnt)
	if now := cnt.Snapshot().FFTs; now != ffts {
		t.Fatalf("second GetBatch recomputed spectra: %d FFTs, want %d", now, ffts)
	}
}

// TestSpectrumCachePooledRelease checks the pooled regime: buffers come
// from the spectra pool of their precision and every byte returns on
// ReleaseAll (the inference round's release hook), for both precisions.
func TestSpectrumCachePooledRelease(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	in := tensor.S3(8, 8, 8)
	const k = 2
	vols := batchVolumes(r, in, k)
	m := tensor.S3(10, 10, 10)

	pre64 := mempool.Spectra.Stats().LiveBytes
	pre32 := mempool.Spectra32.Stats().LiveBytes

	var sc SpectrumCache
	sc.SetPooled(true)
	sc.ResetBatch(vols)
	sc.GetBatch(m, true, PrecF64, nil)
	sc.GetBatch(m, true, PrecF32, nil)
	if live := mempool.Spectra.Stats().LiveBytes; live <= pre64 {
		t.Fatalf("pooled f64 cache did not draw from the spectra pool (live %d, was %d)", live, pre64)
	}
	if live := mempool.Spectra32.Stats().LiveBytes; live <= pre32 {
		t.Fatalf("pooled f32 cache did not draw from the f32 spectra pool (live %d, was %d)", live, pre32)
	}
	sc.ReleaseAll()
	if live := mempool.Spectra.Stats().LiveBytes; live != pre64 {
		t.Fatalf("ReleaseAll left %d f64 pool bytes live, want %d", live, pre64)
	}
	if live := mempool.Spectra32.Stats().LiveBytes; live != pre32 {
		t.Fatalf("ReleaseAll left %d f32 pool bytes live, want %d", live, pre32)
	}

	// Reset on a live pooled cache must also return its buffers.
	sc.ResetBatch(vols)
	sc.GetBatch(m, true, PrecF64, nil)
	sc.ResetBatch(vols)
	if live := mempool.Spectra.Stats().LiveBytes; live != pre64 {
		t.Fatalf("ResetBatch leaked pooled bytes: live %d, want %d", live, pre64)
	}
}
