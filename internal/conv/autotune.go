package conv

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// TunePolicy selects how the autotuner decides between direct and FFT
// convolution for a layer ("ZNN performs layerwise auto-tuning to choose
// between FFT-based or direct convolution for each layer", Section IV).
type TunePolicy int

const (
	// TuneModel chooses by the Table II cost formulas (deterministic).
	TuneModel TunePolicy = iota
	// TuneMeasure times the primitive operations on this machine and
	// chooses by measured per-round layer cost.
	TuneMeasure
	// TuneForceDirect always chooses direct convolution.
	TuneForceDirect
	// TuneForceFFT always chooses FFT convolution (packed r2c spectra).
	TuneForceFFT
	// TuneForceFFTC2C always chooses the legacy full-complex FFT path,
	// kept for packed-vs-full A/B benchmarking.
	TuneForceFFTC2C
)

func (p TunePolicy) String() string {
	switch p {
	case TuneModel:
		return "model"
	case TuneMeasure:
		return "measure"
	case TuneForceDirect:
		return "force-direct"
	case TuneForceFFT:
		return "force-fft"
	case TuneForceFFTC2C:
		return "force-fft-c2c"
	default:
		return "unknown"
	}
}

// LayerGeom describes one fully connected convolutional layer for tuning
// purposes: f input nodes, fPrime output nodes, input image shape, kernel
// shape and sparsity. Density is the mean nonzero fraction of the layer's
// kernels in (0, 1]; zero means unknown and is treated as dense. It feeds
// the sparse-direct cost term — before it existed, a mostly-zero (dilated
// or pruned) kernel was costed as dense, biasing the tuner toward FFT on
// exactly the layers where skipping zero taps wins.
type LayerGeom struct {
	In      tensor.Shape
	Kernel  tensor.Shape
	Sp      tensor.Sparsity
	F       int     // input width
	FPrime  int     // output width
	Density float64 // mean kernel nonzero fraction; 0 = unknown (dense)
}

// TransformShape returns the common FFT shape the spectral methods would
// use for this layer (exported for the execution planner's byte model).
func (g LayerGeom) TransformShape() tensor.Shape {
	return transformShape(g.In, g.Kernel, g.Sp)
}

// density returns the effective kernel density in (0, 1].
func (g LayerGeom) density() float64 {
	if g.Density <= 0 || g.Density > 1 {
		return 1
	}
	return g.Density
}

// f32FFTCostFactor discounts the modeled FFT cost when the spectral path
// runs in float32. The flop count is unchanged and an isolated transform
// is nearly precision-neutral (scalar butterflies are compute-bound), but
// the quantity the tuner predicts is per-round layer cost, and measured
// spectral training rounds — where spectrum traffic, pool zeroing and
// allocation volume halve — run ≈1.78× faster at f32 at 96³-class shapes
// (see BenchmarkSpectralRound96*). The factor is the inverse of that
// measured end-to-end ratio, applied to the whole spectral term as a
// bandwidth proxy; it shifts the direct-vs-FFT crossover toward FFT.
const f32FFTCostFactor = 0.56

// Autotuner caches per-geometry decisions. The zero value uses TuneModel at
// float64 precision; set Precision to PrecF32 when the layers will run the
// reduced-precision spectral path, so both the cost model and the measured
// primitives reflect its halved bandwidth.
type Autotuner struct {
	Policy    TunePolicy
	Precision Precision

	mu    sync.Mutex
	cache map[LayerGeom]Method
}

// Choose returns the convolution method for the layer, caching the answer.
func (a *Autotuner) Choose(g LayerGeom) Method {
	switch a.Policy {
	case TuneForceDirect:
		return Direct
	case TuneForceFFT:
		return FFT
	case TuneForceFFTC2C:
		return FFTC2C
	}
	a.mu.Lock()
	if m, ok := a.cache[g]; ok {
		a.mu.Unlock()
		return m
	}
	a.mu.Unlock()
	var m Method
	if a.Policy == TuneMeasure {
		m = measureChoice(g, a.Precision)
	} else {
		m = modelChoice(g, a.Precision)
	}
	a.mu.Lock()
	if a.cache == nil {
		a.cache = map[LayerGeom]Method{}
	}
	a.cache[g] = m
	a.mu.Unlock()
	return m
}

// modelChoice applies the Table II totals: direct costs 3·f′·f·n′³·k³
// multiply-adds per round; memoized FFT costs
// 6Ch·log₂(n³)·[f′+f+f′·f] + 12·f′·f·h, where h = (X/2+1)·Y·Z is the
// Hermitian-packed coefficient count — real-input transforms and packed
// pointwise products do roughly half the work the paper's full-complex
// formula (h = n³) charges, which shifts the crossover toward FFT. At
// PrecF32 the spectral term is further discounted by f32FFTCostFactor
// (halved bandwidth on a bandwidth-bound path).
func modelChoice(g LayerGeom, prec Precision) Method {
	out := g.In.ValidConv(g.Kernel, g.Sp)
	f, fp := float64(g.F), float64(g.FPrime)
	kv := float64(g.Kernel.Volume())
	ov := float64(out.Volume())
	direct := 3 * fp * f * ov * kv
	// Sparse-direct: the forward and backward convolutions scale with the
	// nonzero tap count (the kernel gradient stays dense — zero taps still
	// receive gradients), with a small per-tap overhead so a fully dense
	// kernel keeps plain Direct.
	taps := math.Max(g.density()*kv, 1)
	sparse := fp * f * ov * (2*taps*sparseDirectOverhead + kv)
	m := transformShape(g.In, g.Kernel, g.Sp)
	nv := float64(m.Volume())
	hv := float64(fft.PackedVolume(m))
	fftCost := 6*FFTConstant*hv*math.Log2(math.Max(nv, 2))*(fp+f+fp*f) +
		12*fp*f*hv
	if prec == PrecF32 {
		fftCost *= f32FFTCostFactor
	}
	best, bestCost := Direct, direct
	if sparse < bestCost {
		best, bestCost = SparseDirect, sparse
	}
	if fftCost < bestCost {
		best = FFT
	}
	return best
}

// measureChoice times the primitive operations of both methods on this
// machine and compares estimated per-round layer costs. The estimates
// mirror the implementation: per round the FFT path performs (f+f′) shared
// image transforms plus, per edge, one kernel transform, three pointwise
// products, three inverse transforms and two spectrum reflections; the
// direct path performs three direct convolutions per edge. The FFT
// primitives timed are the packed r2c ones at the tuner's precision, since
// Method FFT at that precision is what the tuner would select.
func measureChoice(g LayerGeom, prec Precision) Method {
	rng := rand.New(rand.NewSource(12345))
	img := tensor.RandomUniform(rng, g.In, -1, 1)
	ker := tensor.RandomUniform(rng, g.Kernel, -1, 1)
	outShape := g.In.ValidConv(g.Kernel, g.Sp)

	tDirect := timeOp(func() {
		out := tensor.New(outShape)
		ValidDirectInto(out, img, ker, g.Sp)
	})

	tFFT, tInv, tMul, tRefl := measureSpectralPrimitives(g, img, prec)

	f, fp := float64(g.F), float64(g.FPrime)
	edges := f * fp
	direct := 3 * edges * tDirect
	fftTotal := (f+fp)*tFFT + edges*(tFFT+3*tMul+3*tInv+2*tRefl)
	best, bestCost := Direct, direct
	// Sparse-direct is only a candidate when the layer's kernels actually
	// have structural zeros — on a dense layer it is dense Direct plus tap
	// indirection, and timing noise must not flip the tie.
	if g.density() < 1 {
		tSparse := timeSparseDirect(g, img, outShape, rng)
		// Forward and backward run off the tap list; the kernel gradient
		// stays on the dense path.
		if sparse := edges * (2*tSparse + tDirect); sparse < bestCost {
			best, bestCost = SparseDirect, sparse
		}
	}
	if fftTotal < bestCost {
		best = FFT
	}
	return best
}

// timeSparseDirect times one sparse-direct valid convolution with a kernel
// zeroed down to the layer's density, so the measurement reflects the tap
// count the real kernels would present.
func timeSparseDirect(g LayerGeom, img *tensor.Tensor, outShape tensor.Shape, rng *rand.Rand) float64 {
	ker := sparseKernel(rng, g.Kernel, g.density())
	tl := NewTapList(ker)
	return timeOp(func() {
		out := tensor.New(outShape)
		ValidSparseDirectInto(out, img, tl, g.Sp)
	})
}

// sparseKernel builds a random kernel with approximately the given nonzero
// density: nnz = max(1, round(density·volume)) taps at distinct positions.
func sparseKernel(rng *rand.Rand, ks tensor.Shape, density float64) *tensor.Tensor {
	ker := tensor.New(ks)
	n := len(ker.Data)
	nnz := int(math.Round(density * float64(n)))
	if nnz < 1 {
		nnz = 1
	}
	if nnz > n {
		nnz = n
	}
	for _, i := range rng.Perm(n)[:nnz] {
		ker.Data[i] = rng.Float64()*2 - 1
	}
	return ker
}

// measureSpectralPrimitives times one packed forward transform, inverse
// transform, pointwise product and spectrum reflection at the given
// precision.
func measureSpectralPrimitives(g LayerGeom, img *tensor.Tensor, prec Precision) (tFFT, tInv, tMul, tRefl float64) {
	if prec == PrecF32 {
		return timeSpectral[float32, complex64](g, img, &mempool.Spectra32)
	}
	return timeSpectral[float64, complex128](g, img, &mempool.Spectra)
}

// timeSpectral is the precision-generic body of measureSpectralPrimitives:
// the plans, pools and pointwise kernels are generic, so one copy serves
// both precisions (a skew between hand-maintained copies would skew the
// tuner's direct-vs-FFT decision at one precision only).
func timeSpectral[R tensor.Real, C fft.Complex](g LayerGeom, img *tensor.Tensor, pool *mempool.Pool[C]) (tFFT, tInv, tMul, tRefl float64) {
	m := transformShape(g.In, g.Kernel, g.Sp)
	plan := fft.NewPlan3ROf[R, C](m)
	pv := plan.PackedLen()
	imgR := tensor.ConvertOf[R](img)
	out := tensor.NewOf[R](g.In.ValidConv(g.Kernel, g.Sp))
	ox := g.Sp.X * (g.Kernel.X - 1)
	oy := g.Sp.Y * (g.Kernel.Y - 1)
	oz := g.Sp.Z * (g.Kernel.Z - 1)

	buf := pool.Get(pv)
	tFFT = timeOp(func() { plan.Forward(buf, imgR) })
	spec := append([]C(nil), buf...)
	tInv = timeOp(func() {
		copy(buf, spec)
		plan.Inverse(out, buf, ox, oy, oz)
	})
	other := pool.Get(pv)
	copy(other, spec)
	tMul = timeOp(func() { fft.MulInto(buf, spec, other) })
	tRefl = timeOp(func() { reflectSpectrumPackedInto(buf, spec, m, g.In) })
	pool.Put(buf)
	pool.Put(other)
	return
}

// ForwardFlops models the cost of one forward (inference) pass of a fully
// connected layer with the given method and precision, in arbitrary
// consistent units — the whole-network planner's per-layer cost term.
// Unlike modelChoice (which totals all three training phases) this counts
// the forward pass only: f′·f convolutions for the spatial methods; for
// FFT, f shared image transforms, f′ inverse transforms at the summing
// nodes and f′·f pointwise products (kernel transforms are memoized across
// rounds and amortized separately by the planner's fused-K term).
func ForwardFlops(g LayerGeom, m Method, prec Precision) float64 {
	out := g.In.ValidConv(g.Kernel, g.Sp)
	f, fp := float64(g.F), float64(g.FPrime)
	kv := float64(g.Kernel.Volume())
	ov := float64(out.Volume())
	switch m {
	case Direct:
		return fp * f * ov * kv
	case SparseDirect:
		return fp * f * ov * math.Max(g.density()*kv, 1) * sparseDirectOverhead
	case FFT, FFTC2C:
		ms := transformShape(g.In, g.Kernel, g.Sp)
		nv := float64(ms.Volume())
		hv := float64(fft.PackedVolume(ms))
		if m == FFTC2C {
			hv = nv
		}
		cost := 2*FFTConstant*hv*math.Log2(math.Max(nv, 2))*(f+fp) + 6*fp*f*hv
		if m == FFT && prec == PrecF32 {
			cost *= f32FFTCostFactor
		}
		return cost
	default:
		return math.Inf(1)
	}
}

// MeasureForwardSeconds times the primitive operations of the method on
// this machine and returns the estimated seconds of one forward pass of
// the layer — the TuneMeasure-calibrated counterpart of ForwardFlops.
func MeasureForwardSeconds(g LayerGeom, m Method, prec Precision) float64 {
	rng := rand.New(rand.NewSource(12345))
	img := tensor.RandomUniform(rng, g.In, -1, 1)
	outShape := g.In.ValidConv(g.Kernel, g.Sp)
	f, fp := float64(g.F), float64(g.FPrime)
	switch m {
	case Direct:
		ker := tensor.RandomUniform(rng, g.Kernel, -1, 1)
		t := timeOp(func() {
			out := tensor.New(outShape)
			ValidDirectInto(out, img, ker, g.Sp)
		})
		return fp * f * t
	case SparseDirect:
		return fp * f * timeSparseDirect(g, img, outShape, rng)
	case FFT:
		tFFT, tInv, tMul, _ := measureSpectralPrimitives(g, img, prec)
		return f*tFFT + fp*tInv + fp*f*tMul
	default:
		return math.Inf(1)
	}
}

// timeOp returns the per-call seconds of f, using enough repetitions to get
// a stable reading without burning benchmark time.
func timeOp(f func()) float64 {
	f() // warm-up
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start).Seconds() / reps
}
