package conv

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// TunePolicy selects how the autotuner decides between direct and FFT
// convolution for a layer ("ZNN performs layerwise auto-tuning to choose
// between FFT-based or direct convolution for each layer", Section IV).
type TunePolicy int

const (
	// TuneModel chooses by the Table II cost formulas (deterministic).
	TuneModel TunePolicy = iota
	// TuneMeasure times the primitive operations on this machine and
	// chooses by measured per-round layer cost.
	TuneMeasure
	// TuneForceDirect always chooses direct convolution.
	TuneForceDirect
	// TuneForceFFT always chooses FFT convolution (packed r2c spectra).
	TuneForceFFT
	// TuneForceFFTC2C always chooses the legacy full-complex FFT path,
	// kept for packed-vs-full A/B benchmarking.
	TuneForceFFTC2C
)

func (p TunePolicy) String() string {
	switch p {
	case TuneModel:
		return "model"
	case TuneMeasure:
		return "measure"
	case TuneForceDirect:
		return "force-direct"
	case TuneForceFFT:
		return "force-fft"
	case TuneForceFFTC2C:
		return "force-fft-c2c"
	default:
		return "unknown"
	}
}

// LayerGeom describes one fully connected convolutional layer for tuning
// purposes: f input nodes, fPrime output nodes, input image shape, kernel
// shape and sparsity.
type LayerGeom struct {
	In     tensor.Shape
	Kernel tensor.Shape
	Sp     tensor.Sparsity
	F      int // input width
	FPrime int // output width
}

// Autotuner caches per-geometry decisions. The zero value uses TuneModel.
type Autotuner struct {
	Policy TunePolicy

	mu    sync.Mutex
	cache map[LayerGeom]Method
}

// Choose returns the convolution method for the layer, caching the answer.
func (a *Autotuner) Choose(g LayerGeom) Method {
	switch a.Policy {
	case TuneForceDirect:
		return Direct
	case TuneForceFFT:
		return FFT
	case TuneForceFFTC2C:
		return FFTC2C
	}
	a.mu.Lock()
	if m, ok := a.cache[g]; ok {
		a.mu.Unlock()
		return m
	}
	a.mu.Unlock()
	var m Method
	if a.Policy == TuneMeasure {
		m = measureChoice(g)
	} else {
		m = modelChoice(g)
	}
	a.mu.Lock()
	if a.cache == nil {
		a.cache = map[LayerGeom]Method{}
	}
	a.cache[g] = m
	a.mu.Unlock()
	return m
}

// modelChoice applies the Table II totals: direct costs 3·f′·f·n′³·k³
// multiply-adds per round; memoized FFT costs
// 6Ch·log₂(n³)·[f′+f+f′·f] + 12·f′·f·h, where h = (X/2+1)·Y·Z is the
// Hermitian-packed coefficient count — real-input transforms and packed
// pointwise products do roughly half the work the paper's full-complex
// formula (h = n³) charges, which shifts the crossover toward FFT.
func modelChoice(g LayerGeom) Method {
	out := g.In.ValidConv(g.Kernel, g.Sp)
	f, fp := float64(g.F), float64(g.FPrime)
	direct := 3 * fp * f * float64(out.Volume()) * float64(g.Kernel.Volume())
	m := transformShape(g.In, g.Kernel, g.Sp)
	nv := float64(m.Volume())
	hv := float64(fft.PackedVolume(m))
	fftCost := 6*FFTConstant*hv*math.Log2(math.Max(nv, 2))*(fp+f+fp*f) +
		12*fp*f*hv
	if direct <= fftCost {
		return Direct
	}
	return FFT
}

// measureChoice times the primitive operations of both methods on this
// machine and compares estimated per-round layer costs. The estimates
// mirror the implementation: per round the FFT path performs (f+f′) shared
// image transforms plus, per edge, one kernel transform, three pointwise
// products, three inverse transforms and two spectrum reflections; the
// direct path performs three direct convolutions per edge. The FFT
// primitives timed are the packed r2c ones, since Method FFT is what the
// tuner would select.
func measureChoice(g LayerGeom) Method {
	rng := rand.New(rand.NewSource(12345))
	img := tensor.RandomUniform(rng, g.In, -1, 1)
	ker := tensor.RandomUniform(rng, g.Kernel, -1, 1)
	m := transformShape(g.In, g.Kernel, g.Sp)
	plan := fft.NewPlan3R(m)
	pv := plan.PackedLen()
	outShape := g.In.ValidConv(g.Kernel, g.Sp)

	tDirect := timeOp(func() {
		out := tensor.New(outShape)
		ValidDirectInto(out, img, ker, g.Sp)
	})

	buf := mempool.Spectra.Get(pv)
	tFFT := timeOp(func() {
		plan.Forward(buf, img)
	})
	spec := append([]complex128(nil), buf...)
	out := tensor.New(outShape)
	ox := g.Sp.X * (g.Kernel.X - 1)
	oy := g.Sp.Y * (g.Kernel.Y - 1)
	oz := g.Sp.Z * (g.Kernel.Z - 1)
	tInv := timeOp(func() {
		copy(buf, spec)
		plan.Inverse(out, buf, ox, oy, oz)
	})
	other := mempool.Spectra.Get(pv)
	copy(other, spec)
	tMul := timeOp(func() { fft.MulInto(buf, spec, other) })
	tRefl := timeOp(func() { reflectSpectrumPackedInto(buf, spec, m, g.In) })
	mempool.Spectra.Put(buf)
	mempool.Spectra.Put(other)

	f, fp := float64(g.F), float64(g.FPrime)
	edges := f * fp
	direct := 3 * edges * tDirect
	fftTotal := (f+fp)*tFFT + edges*(tFFT+3*tMul+3*tInv+2*tRefl)
	if direct <= fftTotal {
		return Direct
	}
	return FFT
}

// timeOp returns the per-call seconds of f, using enough repetitions to get
// a stable reading without burning benchmark time.
func timeOp(f func()) float64 {
	f() // warm-up
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start).Seconds() / reps
}
