package conv

import (
	"math"
	"sync/atomic"

	"znn/internal/tensor"
)

// Counters accumulates the work performed by convolution edges, giving the
// empirical side of the Table II complexity comparison (experiment E2).
// A nil *Counters is valid and counts nothing, so instrumentation can stay
// in place on hot paths.
type Counters struct {
	FFTs        atomic.Int64 // number of forward 3D transforms
	InverseFFTs atomic.Int64 // number of inverse 3D transforms
	FFTFlops    atomic.Int64 // Σ over transforms of C·N·log2(N), C = FFTConstant
	MulVolume   atomic.Int64 // voxels of pointwise complex multiply-accumulate
	ReflectOps  atomic.Int64 // spectrum-reflection passes (phase trick, no FFT)
	DirectFlops atomic.Int64 // multiply-add pairs of direct convolution
}

// FFTConstant is the constant C in the paper's FFT cost model Cn³·log n³
// (the paper's Fig. 4 assumes C = 5).
const FFTConstant = 5

func fftFlops(m tensor.Shape) int64 {
	n := float64(m.Volume())
	if n <= 1 {
		return 0
	}
	return int64(FFTConstant * n * math.Log2(n))
}

func (c *Counters) addFFT(m tensor.Shape) {
	if c == nil {
		return
	}
	c.FFTs.Add(1)
	c.FFTFlops.Add(fftFlops(m))
}

func (c *Counters) addInverse(m tensor.Shape) {
	if c == nil {
		return
	}
	c.InverseFFTs.Add(1)
	c.FFTFlops.Add(fftFlops(m))
}

func (c *Counters) addMul(m tensor.Shape) {
	if c == nil {
		return
	}
	c.MulVolume.Add(int64(m.Volume()))
}

func (c *Counters) addReflect(m tensor.Shape) {
	if c == nil {
		return
	}
	c.ReflectOps.Add(1)
}

func (c *Counters) addDirect(flops int64) {
	if c == nil {
		return
	}
	c.DirectFlops.Add(flops)
}

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	FFTs        int64
	InverseFFTs int64
	FFTFlops    int64
	MulVolume   int64
	ReflectOps  int64
	DirectFlops int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		FFTs:        c.FFTs.Load(),
		InverseFFTs: c.InverseFFTs.Load(),
		FFTFlops:    c.FFTFlops.Load(),
		MulVolume:   c.MulVolume.Load(),
		ReflectOps:  c.ReflectOps.Load(),
		DirectFlops: c.DirectFlops.Load(),
	}
}

// Sub returns the difference of two snapshots (s − t), convenient for
// measuring a single phase.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		FFTs:        s.FFTs - t.FFTs,
		InverseFFTs: s.InverseFFTs - t.InverseFFTs,
		FFTFlops:    s.FFTFlops - t.FFTFlops,
		MulVolume:   s.MulVolume - t.MulVolume,
		ReflectOps:  s.ReflectOps - t.ReflectOps,
		DirectFlops: s.DirectFlops - t.DirectFlops,
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.FFTs.Store(0)
	c.InverseFFTs.Store(0)
	c.FFTFlops.Store(0)
	c.MulVolume.Store(0)
	c.ReflectOps.Store(0)
	c.DirectFlops.Store(0)
}

// directConvFlops returns the multiply-add count of a direct valid
// convolution: output volume × kernel volume.
func directConvFlops(out, k tensor.Shape) int64 {
	return int64(out.Volume()) * int64(k.Volume())
}
