package conv

import (
	"math"
	"sync/atomic"

	"znn/internal/fft"
	"znn/internal/tensor"
)

// Counters accumulates the work performed by convolution edges, giving the
// empirical side of the Table II complexity comparison (experiment E2).
// A nil *Counters is valid and counts nothing, so instrumentation can stay
// in place on hot paths.
type Counters struct {
	FFTs        atomic.Int64 // number of forward 3D transforms (packed or full)
	PackedFFTs  atomic.Int64 // forward + inverse transforms that ran r2c/c2r packed
	InverseFFTs atomic.Int64 // number of inverse 3D transforms
	FFTFlops    atomic.Int64 // Σ over transforms of C·W·log2(N); W = N full, (X/2+1)·Y·Z packed
	MulVolume   atomic.Int64 // coefficients of pointwise complex multiply-accumulate
	ReflectOps  atomic.Int64 // spectrum-reflection passes (phase trick, no FFT)
	DirectFlops atomic.Int64 // multiply-add pairs of direct convolution
	F32FFTs     atomic.Int64 // forward + inverse transforms that ran in float32/complex64
}

// FFTConstant is the constant C in the paper's FFT cost model Cn³·log n³
// (the paper's Fig. 4 assumes C = 5).
const FFTConstant = 5

// fftFlops returns the modeled cost of one 3D transform at shape m:
// C·N·log2(N) for a full complex transform, with N replaced by the packed
// coefficient count (X/2+1)·Y·Z when the transform exploits real-input
// symmetry — the ~2× saving that motivates the r2c path.
func fftFlops(m tensor.Shape, packed bool) int64 {
	n := float64(m.Volume())
	if n <= 1 {
		return 0
	}
	work := n
	if packed {
		work = float64(fft.PackedVolume(m))
	}
	return int64(FFTConstant * work * math.Log2(n))
}

func (c *Counters) addFFT(m tensor.Shape, packed, f32 bool) {
	if c == nil {
		return
	}
	c.FFTs.Add(1)
	if packed {
		c.PackedFFTs.Add(1)
	}
	if f32 {
		c.F32FFTs.Add(1)
	}
	c.FFTFlops.Add(fftFlops(m, packed))
}

func (c *Counters) addInverse(m tensor.Shape, packed, f32 bool) {
	if c == nil {
		return
	}
	c.InverseFFTs.Add(1)
	if packed {
		c.PackedFFTs.Add(1)
	}
	if f32 {
		c.F32FFTs.Add(1)
	}
	c.FFTFlops.Add(fftFlops(m, packed))
}

func (c *Counters) addMul(m tensor.Shape, packed bool) {
	if c == nil {
		return
	}
	if packed {
		c.MulVolume.Add(int64(fft.PackedVolume(m)))
	} else {
		c.MulVolume.Add(int64(m.Volume()))
	}
}

func (c *Counters) addReflect(m tensor.Shape) {
	if c == nil {
		return
	}
	c.ReflectOps.Add(1)
}

func (c *Counters) addDirect(flops int64) {
	if c == nil {
		return
	}
	c.DirectFlops.Add(flops)
}

// Snapshot is a plain-value copy of the counters, plus the process-global
// vector-kernel dispatch state (fft.KernelPath / fft.KernelDispatches):
// which complex64 kernel set this process runs and how many kernel calls
// it has dispatched to the vector set. The dispatch fields describe the
// process, not one edge, but they belong in the same observability surface
// — an f32 FFT count is only interpretable next to the instruction set
// that executed it.
type Snapshot struct {
	FFTs         int64
	PackedFFTs   int64
	InverseFFTs  int64
	FFTFlops     int64
	MulVolume    int64
	ReflectOps   int64
	DirectFlops  int64
	F32FFTs      int64
	VecKernelOps int64  // process-wide dispatches into the vector kernel set
	KernelPath   string // "avx2", "scalar", or "purego" (process-wide)
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{KernelPath: fft.KernelPath(), VecKernelOps: fft.KernelDispatches()}
	}
	return Snapshot{
		FFTs:         c.FFTs.Load(),
		PackedFFTs:   c.PackedFFTs.Load(),
		InverseFFTs:  c.InverseFFTs.Load(),
		FFTFlops:     c.FFTFlops.Load(),
		MulVolume:    c.MulVolume.Load(),
		ReflectOps:   c.ReflectOps.Load(),
		DirectFlops:  c.DirectFlops.Load(),
		F32FFTs:      c.F32FFTs.Load(),
		VecKernelOps: fft.KernelDispatches(),
		KernelPath:   fft.KernelPath(),
	}
}

// Sub returns the difference of two snapshots (s − t), convenient for
// measuring a single phase.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		FFTs:         s.FFTs - t.FFTs,
		PackedFFTs:   s.PackedFFTs - t.PackedFFTs,
		InverseFFTs:  s.InverseFFTs - t.InverseFFTs,
		FFTFlops:     s.FFTFlops - t.FFTFlops,
		MulVolume:    s.MulVolume - t.MulVolume,
		ReflectOps:   s.ReflectOps - t.ReflectOps,
		DirectFlops:  s.DirectFlops - t.DirectFlops,
		F32FFTs:      s.F32FFTs - t.F32FFTs,
		VecKernelOps: s.VecKernelOps - t.VecKernelOps,
		KernelPath:   s.KernelPath,
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.FFTs.Store(0)
	c.PackedFFTs.Store(0)
	c.InverseFFTs.Store(0)
	c.FFTFlops.Store(0)
	c.MulVolume.Store(0)
	c.ReflectOps.Store(0)
	c.DirectFlops.Store(0)
	c.F32FFTs.Store(0)
}

// directConvFlops returns the multiply-add count of a direct valid
// convolution: output volume × kernel volume.
func directConvFlops(out, k tensor.Shape) int64 {
	return int64(out.Volume()) * int64(k.Volume())
}

// sparseConvFlops returns the multiply-add count of a sparse-direct
// convolution: output volume × nonzero tap count — the whole point of the
// tap-list path is that the counter (like the work) scales with nnz.
func sparseConvFlops(out tensor.Shape, tl *TapList) int64 {
	return int64(out.Volume()) * int64(tl.Len())
}
