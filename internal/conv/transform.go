package conv

import (
	"fmt"
	"sync"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// spectrumKey identifies a cached spectrum: Hermitian-packed and full
// complex spectra of the same transform shape have different layouts (and
// lengths), so a node feeding both packed-FFT and c2c-FFT edges keeps one
// entry per combination.
type spectrumKey struct {
	m      tensor.Shape
	packed bool
}

// SpectrumCache shares the forward FFT of one node's image among all edges
// that consume it ("the FFT of an image at a node can be shared by edges at
// that node", Section IV). The cache is keyed by transform shape and
// packedness so a node feeding layers with different kernel sizes keeps one
// spectrum per shape.
//
// Cached buffers are garbage-collected rather than pooled: memoizing edges
// retain references across the round boundary (the update task may run
// lazily during the next forward pass), so explicit reclamation would need
// reference counting for no measurable benefit.
type SpectrumCache struct {
	mu      sync.Mutex
	img     *tensor.Tensor
	entries map[spectrumKey][]complex128
}

// Reset points the cache at a new image, discarding cached spectra.
func (sc *SpectrumCache) Reset(img *tensor.Tensor) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.img = img
	sc.entries = nil
}

// Get returns the spectrum of the cached image at transform shape m —
// Hermitian-packed when packed is true, full complex otherwise — computing
// it on first use. The returned buffer is shared and must be treated as
// immutable.
func (sc *SpectrumCache) Get(m tensor.Shape, packed bool, c *Counters) []complex128 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.img == nil {
		panic("conv: SpectrumCache.Get before Reset")
	}
	key := spectrumKey{m: m, packed: packed}
	if buf, ok := sc.entries[key]; ok {
		return buf
	}
	var buf []complex128
	if packed {
		buf = make([]complex128, fft.PackedVolume(m))
		fft.NewPlan3R(m).Forward(buf, sc.img)
	} else {
		buf = make([]complex128, m.Volume())
		fft.LoadReal(buf, m, sc.img)
		fft.NewPlan3(m).Forward(buf)
	}
	c.addFFT(m, packed)
	if sc.entries == nil {
		sc.entries = map[spectrumKey][]complex128{}
	}
	sc.entries[key] = buf
	return buf
}

// Method selects the convolution implementation for an edge.
type Method int

const (
	// Direct computes convolutions in the spatial domain.
	Direct Method = iota
	// FFT computes convolutions in the frequency domain using real-input
	// (r2c/c2r) transforms with Hermitian-packed spectra — the default
	// spectral path.
	FFT
	// FFTC2C computes frequency-domain convolutions with full complex
	// transforms over all X·Y·Z points. It is the pre-packing code path,
	// kept selectable (TuneForceFFTC2C) so packed-vs-full A/B benchmarks
	// run against live code rather than an old commit.
	FFTC2C
)

func (m Method) String() string {
	switch m {
	case Direct:
		return "direct"
	case FFT:
		return "fft"
	case FFTC2C:
		return "fft-c2c"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// IsFFT reports whether the method computes in the frequency domain
// (packed or full-complex).
func (m Method) IsFFT() bool { return m == FFT || m == FFTC2C }

// Transformer executes the three convolution phases of one edge — forward,
// backward, kernel gradient — with a fixed method, and implements FFT
// memoization (Table II): the kernel spectrum persists across rounds until
// the weight update invalidates it; with Memoize enabled the forward image
// spectrum and backward gradient spectrum are retained for the update,
// which then costs a single inverse transform.
//
// The scheduler's FORCE discipline (Section VI) makes the memo slots safe
// without extra synchronization beyond the internal mutex: an edge's update
// always executes before the edge's next forward pass overwrites the slots.
type Transformer struct {
	in     tensor.Shape    // input image shape n
	k      tensor.Shape    // kernel shape
	out    tensor.Shape    // valid output shape n − s(k−1)
	sp     tensor.Sparsity // sparsity s
	m      tensor.Shape    // common transform shape
	mth    Method
	mem    bool
	cnt    *Counters
	packed bool        // spectra are Hermitian-packed (Method FFT)
	sv     int         // spectrum buffer length (packed or full volume)
	p3     *fft.Plan3  // full-complex plan (Method FFTC2C)
	p3r    *fft.Plan3R // packed real plan (Method FFT)

	mu       sync.Mutex
	kerF     []complex128 // spectrum of the dilated kernel
	kerFRefl []complex128 // spectrum of the reflected dilated kernel
	imgF     []complex128 // memoized forward image spectrum (round-scoped)
	bwdF     []complex128 // memoized backward gradient spectrum (round-scoped)
}

// NewTransformer builds a transformer for an edge with the given geometry.
// counters may be nil.
func NewTransformer(in, k tensor.Shape, sp tensor.Sparsity, method Method, memoize bool, counters *Counters) *Transformer {
	out := in.ValidConv(k, sp)
	if !out.Valid() {
		panic(fmt.Sprintf("conv: kernel %v (sparsity %v) does not fit in image %v", k, sp, in))
	}
	t := &Transformer{
		in:  in,
		k:   k,
		out: out,
		sp:  sp,
		m:   transformShape(in, k, sp),
		mth: method,
		mem: memoize,
		cnt: counters,
	}
	switch method {
	case Direct:
	case FFT:
		t.packed = true
		t.p3r = fft.NewPlan3R(t.m)
		t.sv = t.p3r.PackedLen()
	case FFTC2C:
		t.p3 = fft.NewPlan3(t.m)
		t.sv = t.m.Volume()
	default:
		panic(fmt.Sprintf("conv: unknown method %v", method))
	}
	return t
}

// Method returns the convolution method in use.
func (t *Transformer) Method() Method { return t.mth }

// OutShape returns the forward output shape.
func (t *Transformer) OutShape() tensor.Shape { return t.out }

// InShape returns the forward input shape.
func (t *Transformer) InShape() tensor.Shape { return t.in }

// TransformShape returns the common FFT shape (meaningful for FFT methods).
func (t *Transformer) TransformShape() tensor.Shape { return t.m }

// specInto computes the forward spectrum of src into buf (length t.sv) at
// the transform shape, packed or full according to the method.
func (t *Transformer) specInto(buf []complex128, src *tensor.Tensor) {
	if t.packed {
		t.p3r.Forward(buf, src)
	} else {
		fft.LoadReal(buf, t.m, src)
		t.p3.Forward(buf)
	}
	t.cnt.addFFT(t.m, t.packed)
}

// newSpec allocates a GC-managed spectrum buffer (memo slots and kernel
// spectra live across round boundaries, so they bypass the pool — see
// SpectrumCache) and fills it with the forward spectrum of src.
func (t *Transformer) newSpec(src *tensor.Tensor) []complex128 {
	buf := make([]complex128, t.sv)
	t.specInto(buf, src)
	return buf
}

// inverseStore inverts spec (consuming the buffer) and stores the
// sub-volume at (ox,oy,oz) into out, with the 1/N normalization.
func (t *Transformer) inverseStore(out *tensor.Tensor, spec []complex128, ox, oy, oz int) {
	if t.packed {
		t.p3r.Inverse(out, spec, ox, oy, oz)
	} else {
		t.p3.Inverse(spec)
		fft.StoreReal(out, spec, t.m, ox, oy, oz)
	}
	t.cnt.addInverse(t.m, t.packed)
}

// reflectInto applies the conjugate-reflection phase pass for a signal of
// the given support, in the method's spectrum layout.
func (t *Transformer) reflectInto(dst, src []complex128, support tensor.Shape) {
	if t.packed {
		reflectSpectrumPackedInto(dst, src, t.m, support)
	} else {
		reflectSpectrumInto(dst, src, t.m, support)
	}
	t.cnt.addReflect(t.m)
}

// kernelSpectra returns the (possibly cached) spectra of the dilated kernel
// and its reflection, computing them if the update invalidated them.
func (t *Transformer) kernelSpectra(ker *tensor.Tensor) (kf, kfr []complex128) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.kerF == nil {
		d := ker.Dilate(t.sp)
		t.kerF = t.newSpec(d)
		t.kerFRefl = make([]complex128, t.sv)
		t.reflectInto(t.kerFRefl, t.kerF, d.S)
	}
	return t.kerF, t.kerFRefl
}

// InvalidateKernel discards the cached kernel spectra; the update task
// calls this after changing the weights.
func (t *Transformer) InvalidateKernel() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.kerF = nil
	t.kerFRefl = nil
}

// Forward computes the edge's forward pass: the valid sparse convolution of
// img with ker. sc, when non-nil, supplies the node-shared image spectrum.
func (t *Transformer) Forward(img, ker *tensor.Tensor, sc *SpectrumCache) *tensor.Tensor {
	if img.S != t.in {
		panic(fmt.Sprintf("conv: forward image %v, want %v", img.S, t.in))
	}
	if ker.S != t.k {
		panic(fmt.Sprintf("conv: kernel %v, want %v", ker.S, t.k))
	}
	if t.mth == Direct {
		out := tensor.New(t.out)
		ValidDirectInto(out, img, ker, t.sp)
		t.cnt.addDirect(directConvFlops(t.out, t.k))
		return out
	}
	var imgF []complex128
	if sc != nil {
		imgF = sc.Get(t.m, t.packed, t.cnt)
	} else {
		imgF = t.newSpec(img)
	}
	kf, _ := t.kernelSpectra(ker)
	prod := mempool.Spectra.Get(t.sv)
	fft.MulInto(prod, imgF, kf)
	t.cnt.addMul(t.m, t.packed)
	out := tensor.New(t.out)
	t.inverseStore(out, prod, t.sp.X*(t.k.X-1), t.sp.Y*(t.k.Y-1), t.sp.Z*(t.k.Z-1))
	mempool.Spectra.Put(prod)
	if t.mem {
		t.mu.Lock()
		t.imgF = imgF
		t.mu.Unlock()
	}
	return out
}

// Backward computes the edge's backward pass: the full convolution of the
// backward image bwd (shape n′) with the reflected kernel, yielding shape
// n. sc, when non-nil, supplies the spectrum of bwd shared across the
// in-edges of the node that produced it.
func (t *Transformer) Backward(bwd, ker *tensor.Tensor, sc *SpectrumCache) *tensor.Tensor {
	if bwd.S != t.out {
		panic(fmt.Sprintf("conv: backward image %v, want %v", bwd.S, t.out))
	}
	if t.mth == Direct {
		out := tensor.New(t.in)
		FullDirectInto(out, bwd, ker.Reflect(), t.sp)
		t.cnt.addDirect(directConvFlops(t.out, t.k))
		return out
	}
	var bwdF []complex128
	if sc != nil {
		bwdF = sc.Get(t.m, t.packed, t.cnt)
	} else {
		bwdF = t.newSpec(bwd)
	}
	_, kfr := t.kernelSpectra(ker)
	prod := mempool.Spectra.Get(t.sv)
	fft.MulInto(prod, bwdF, kfr)
	t.cnt.addMul(t.m, t.packed)
	out := tensor.New(t.in)
	t.inverseStore(out, prod, 0, 0, 0)
	mempool.Spectra.Put(prod)
	if t.mem {
		t.mu.Lock()
		t.bwdF = bwdF
		t.mu.Unlock()
	}
	return out
}

// KernelGrad computes the gradient of the loss with respect to the kernel:
// the valid convolution of the reflected forward image with the backward
// image, subsampled at the sparsity stride. With memoization enabled and
// both phase spectra retained, it costs one spectrum reflection, one
// pointwise product and one inverse transform (Table II, memoized update).
// The memo slots are consumed: a second call recomputes from the images.
func (t *Transformer) KernelGrad(img, bwd *tensor.Tensor) *tensor.Tensor {
	if img.S != t.in || bwd.S != t.out {
		panic(fmt.Sprintf("conv: kernel grad shapes img %v bwd %v, want %v and %v",
			img.S, bwd.S, t.in, t.out))
	}
	if t.mth == Direct {
		g := KernelGradDirect(img, bwd, t.k, t.sp)
		t.cnt.addDirect(directConvFlops(t.out, t.k))
		return g
	}
	t.mu.Lock()
	imgF, bwdF := t.imgF, t.bwdF
	t.imgF, t.bwdF = nil, nil
	t.mu.Unlock()
	if imgF == nil {
		imgF = t.newSpec(img)
	}
	if bwdF == nil {
		bwdF = t.newSpec(bwd)
	}
	// F(reflect(img)) from the memoized F(img) via the phase trick.
	prod := mempool.Spectra.Get(t.sv)
	t.reflectInto(prod, imgF, t.in)
	fft.MulInto(prod, prod, bwdF)
	t.cnt.addMul(t.m, t.packed)
	// Full-convolution values at offsets (n′−1) + s·a, a = 0..k−1.
	full := tensor.New(tensor.Shape{
		X: t.sp.X*(t.k.X-1) + 1,
		Y: t.sp.Y*(t.k.Y-1) + 1,
		Z: t.sp.Z*(t.k.Z-1) + 1,
	})
	t.inverseStore(full, prod, t.out.X-1, t.out.Y-1, t.out.Z-1)
	mempool.Spectra.Put(prod)
	return full.Subsample(0, 0, 0, t.sp, t.k)
}

// HasMemoizedSpectra reports whether both round-scoped memo slots are
// populated (used by tests to verify the memoization lifecycle).
func (t *Transformer) HasMemoizedSpectra() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.imgF != nil && t.bwdF != nil
}

// --- Spectral accumulation (node-level FFT-domain summation) -------------
//
// When every edge converging on a node uses the same FFT method with the
// same transform shape, kernel shape and sparsity, the node can sum the
// edges' FFT-domain products and run a single inverse transform: the
// execution model the paper's Table II costs assume (f′ inverse transforms
// per layer forward pass instead of f′·f). The four methods below compute
// the per-edge products and the per-node finishers.

// SpectralCompatible reports whether two transformers may share a node's
// spectral sum: same FFT method (so the buffers have the same layout and
// length), transform shape, kernel shape and sparsity (the crop offsets
// must agree).
func (t *Transformer) SpectralCompatible(o *Transformer) bool {
	return t.mth.IsFFT() && t.mth == o.mth &&
		t.m == o.m && t.k == o.k && t.sp == o.sp && t.out == o.out && t.in == o.in
}

// ForwardProduct computes the edge's FFT-domain forward product
// F(img)·F(kernel) into a pooled buffer (ownership passes to the caller,
// typically a wsum.ComplexSum). Memoization records the image spectrum
// exactly as Forward does.
func (t *Transformer) ForwardProduct(img, ker *tensor.Tensor, sc *SpectrumCache) []complex128 {
	if !t.mth.IsFFT() {
		panic("conv: ForwardProduct on a direct-method transformer")
	}
	if img.S != t.in {
		panic(fmt.Sprintf("conv: forward image %v, want %v", img.S, t.in))
	}
	var imgF []complex128
	if sc != nil {
		imgF = sc.Get(t.m, t.packed, t.cnt)
	} else {
		imgF = t.newSpec(img)
	}
	kf, _ := t.kernelSpectra(ker)
	prod := mempool.Spectra.Get(t.sv)
	fft.MulInto(prod, imgF, kf)
	t.cnt.addMul(t.m, t.packed)
	if t.mem {
		t.mu.Lock()
		t.imgF = imgF
		t.mu.Unlock()
	}
	return prod
}

// FinishForward inverts an accumulated forward spectrum, crops the valid
// region, and releases the buffer to the pool.
func (t *Transformer) FinishForward(spec []complex128) *tensor.Tensor {
	out := tensor.New(t.out)
	t.inverseStore(out, spec,
		t.sp.X*(t.k.X-1), t.sp.Y*(t.k.Y-1), t.sp.Z*(t.k.Z-1))
	mempool.Spectra.Put(spec)
	return out
}

// BackwardProduct computes the edge's FFT-domain backward product
// F(bwd)·F(reflected kernel) into a pooled buffer.
func (t *Transformer) BackwardProduct(bwd, ker *tensor.Tensor, sc *SpectrumCache) []complex128 {
	if !t.mth.IsFFT() {
		panic("conv: BackwardProduct on a direct-method transformer")
	}
	if bwd.S != t.out {
		panic(fmt.Sprintf("conv: backward image %v, want %v", bwd.S, t.out))
	}
	var bwdF []complex128
	if sc != nil {
		bwdF = sc.Get(t.m, t.packed, t.cnt)
	} else {
		bwdF = t.newSpec(bwd)
	}
	_, kfr := t.kernelSpectra(ker)
	prod := mempool.Spectra.Get(t.sv)
	fft.MulInto(prod, bwdF, kfr)
	t.cnt.addMul(t.m, t.packed)
	if t.mem {
		t.mu.Lock()
		t.bwdF = bwdF
		t.mu.Unlock()
	}
	return prod
}

// FinishBackward inverts an accumulated backward spectrum, crops the full
// region (the input shape), and releases the buffer.
func (t *Transformer) FinishBackward(spec []complex128) *tensor.Tensor {
	out := tensor.New(t.in)
	t.inverseStore(out, spec, 0, 0, 0)
	mempool.Spectra.Put(spec)
	return out
}
