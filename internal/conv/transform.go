package conv

import (
	"fmt"
	"sync"

	"znn/internal/fft"
	"znn/internal/mempool"
	"znn/internal/tensor"
)

// spectrumKey identifies a cached spectrum: Hermitian-packed and full
// complex spectra of the same transform shape have different layouts (and
// lengths), and the two precisions have different element types, so a node
// feeding a mix of edges keeps one entry per (shape, packedness, dtype)
// combination.
type spectrumKey struct {
	m      tensor.Shape
	packed bool
	prec   Precision
}

// SpectrumCache shares the forward FFTs of one node's images among all
// edges that consume them ("the FFT of an image at a node can be shared by
// edges at that node", Section IV). The cache is keyed by transform shape,
// packedness and precision so a node feeding layers with different kernel
// sizes or dtypes keeps one spectrum per combination; it is batch-aware, so
// a fused K-volume inference round holds one image — and lazily one
// spectrum per key — per volume. The batched spectrum-sharing contract: a
// node's K images are published together (ResetBatch), every consuming edge
// sees the same K buffers (GetBatch/GetAt), and the buffers are immutable
// until the next Reset or ReleaseAll.
//
// Two allocation regimes coexist. Training rounds use GC-managed buffers:
// memoizing edges retain references across the round boundary (the update
// task may run lazily during the next forward pass), so explicit
// reclamation would need reference counting. Inference rounds never memoize
// and own a cache per round, so they run pooled (SetPooled): buffers come
// from the spectra pool of their precision and return to it through the
// round's release hook (ReleaseAll), killing the per-round spectrum garbage
// that sustained serving traffic otherwise produces.
type SpectrumCache struct {
	mu      sync.Mutex
	pooled  bool
	imgs    []*tensor.Tensor
	single  [1]*tensor.Tensor // backing array for the K=1 Reset fast path
	entries map[spectrumKey][]fft.Spectrum
}

// SetPooled selects the pooled allocation regime. It must be called before
// the first Get; pairing every pooled cache with a ReleaseAll is the
// caller's responsibility (RoundState.release is the engine's hook).
func (sc *SpectrumCache) SetPooled(pooled bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.pooled = pooled
}

// Reset points the cache at a new single image, discarding cached spectra
// (pooled buffers return to their pool).
func (sc *SpectrumCache) Reset(img *tensor.Tensor) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.single[0] = img
	sc.imgs = sc.single[:]
	sc.dropLocked()
}

// ResetBatch points the cache at the K images of one fused round's node,
// discarding cached spectra. The slice is retained, not copied.
func (sc *SpectrumCache) ResetBatch(imgs []*tensor.Tensor) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.imgs = imgs
	sc.dropLocked()
}

// dropLocked discards all cached spectra, returning pooled buffers to
// their pool. Caller holds sc.mu.
func (sc *SpectrumCache) dropLocked() {
	if sc.pooled {
		for _, specs := range sc.entries {
			for _, s := range specs {
				if !s.IsNil() {
					s.Release()
				}
			}
		}
	}
	sc.entries = nil
}

// ReleaseAll discards every cached spectrum; pooled buffers go back to the
// spectra pool of their precision. This is the inference round's release
// hook — it must only run once no task can still read the buffers (after
// the round's task tree completed).
func (sc *SpectrumCache) ReleaseAll() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.dropLocked()
}

// Get returns the spectrum of the cached image at transform shape m —
// Hermitian-packed when packed is true, full complex otherwise, at the
// given precision — computing it on first use. The returned buffer is
// shared and must be treated as immutable.
func (sc *SpectrumCache) Get(m tensor.Shape, packed bool, prec Precision, c *Counters) fft.Spectrum {
	return sc.GetAt(0, m, packed, prec, c)
}

// GetAt is Get for volume i of a batched cache.
func (sc *SpectrumCache) GetAt(i int, m tensor.Shape, packed bool, prec Precision, c *Counters) fft.Spectrum {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.getLocked(i, m, packed, prec, c)
}

// GetBatch returns the spectra of all K cached images at one key,
// computing missing ones under a single lock hold — the entry point for
// batched transformer sweeps, where one kernel-spectrum fetch feeds K
// pointwise products. The returned slice is shared; treat it and every
// buffer as immutable.
func (sc *SpectrumCache) GetBatch(m tensor.Shape, packed bool, prec Precision, c *Counters) []fft.Spectrum {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for i := range sc.imgs {
		sc.getLocked(i, m, packed, prec, c)
	}
	return sc.entries[spectrumKey{m: m, packed: packed, prec: prec}]
}

// getLocked computes-or-returns the spectrum of image i at the key.
// Caller holds sc.mu.
func (sc *SpectrumCache) getLocked(i int, m tensor.Shape, packed bool, prec Precision, c *Counters) fft.Spectrum {
	if len(sc.imgs) == 0 || sc.imgs[i] == nil {
		panic("conv: SpectrumCache.Get before Reset")
	}
	key := spectrumKey{m: m, packed: packed, prec: prec}
	specs := sc.entries[key]
	if specs == nil {
		specs = make([]fft.Spectrum, len(sc.imgs))
		if sc.entries == nil {
			sc.entries = map[spectrumKey][]fft.Spectrum{}
		}
		sc.entries[key] = specs
	}
	if !specs[i].IsNil() {
		return specs[i]
	}
	var buf fft.Spectrum
	switch {
	case packed && prec == PrecF32:
		var b []complex64
		if sc.pooled {
			b = mempool.Spectra32.Get(fft.PackedVolume(m))
		} else {
			b = make([]complex64, fft.PackedVolume(m))
		}
		fft.NewPlan3ROf[float32, complex64](m).ForwardF64(b, sc.imgs[i])
		buf = fft.Spec64(b)
	case packed:
		var b []complex128
		if sc.pooled {
			b = mempool.Spectra.Get(fft.PackedVolume(m))
		} else {
			b = make([]complex128, fft.PackedVolume(m))
		}
		fft.NewPlan3R(m).Forward(b, sc.imgs[i])
		buf = fft.Spec128(b)
	default:
		var b []complex128
		if sc.pooled {
			b = mempool.Spectra.Get(m.Volume())
		} else {
			b = make([]complex128, m.Volume())
		}
		fft.LoadReal(b, m, sc.imgs[i])
		fft.NewPlan3(m).Forward(b)
		buf = fft.Spec128(b)
	}
	c.addFFT(m, packed, prec == PrecF32)
	specs[i] = buf
	return buf
}

// Method selects the convolution implementation for an edge.
type Method int

const (
	// Direct computes convolutions in the spatial domain.
	Direct Method = iota
	// FFT computes convolutions in the frequency domain using real-input
	// (r2c/c2r) transforms with Hermitian-packed spectra — the default
	// spectral path. Its element type is selected by Precision.
	FFT
	// FFTC2C computes frequency-domain convolutions with full complex
	// transforms over all X·Y·Z points. It is the pre-packing code path,
	// kept selectable (TuneForceFFTC2C) so packed-vs-full A/B benchmarks
	// run against live code rather than an old commit. Always complex128.
	FFTC2C
	// SparseDirect computes convolutions in the spatial domain from a
	// precomputed nonzero-tap list (znn3's sparse_convolve): work scales
	// with the kernel's nonzero count instead of its dense volume, so the
	// planner can pick it for high-sparsity edges where the dense direct
	// loop and the padded FFT both charge for taps that contribute nothing.
	// Output bits match Direct exactly.
	SparseDirect
)

func (m Method) String() string {
	switch m {
	case Direct:
		return "direct"
	case FFT:
		return "fft"
	case FFTC2C:
		return "fft-c2c"
	case SparseDirect:
		return "sparse-direct"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// IsFFT reports whether the method computes in the frequency domain
// (packed or full-complex).
func (m Method) IsFFT() bool { return m == FFT || m == FFTC2C }

// Transformer executes the three convolution phases of one edge — forward,
// backward, kernel gradient — with a fixed method and precision, and
// implements FFT memoization (Table II): the kernel spectrum persists
// across rounds until the weight update invalidates it; with Memoize
// enabled the forward image spectrum and backward gradient spectrum are
// retained for the update, which then costs a single inverse transform.
//
// The scheduler's FORCE discipline (Section VI) makes the memo slots safe
// without extra synchronization beyond the internal mutex: an edge's update
// always executes before the edge's next forward pass overwrites the slots.
type Transformer struct {
	in     tensor.Shape    // input image shape n
	k      tensor.Shape    // kernel shape
	out    tensor.Shape    // valid output shape n − s(k−1)
	sp     tensor.Sparsity // sparsity s
	m      tensor.Shape    // common transform shape
	mth    Method
	prec   Precision
	mem    bool
	cnt    *Counters
	packed bool                              // spectra are Hermitian-packed (Method FFT)
	sv     int                               // spectrum coefficient count (packed or full volume)
	p3     *fft.Plan3                        // full-complex plan (Method FFTC2C)
	p3r    *fft.Plan3R                       // packed real plan (Method FFT, PrecF64)
	p3r32  *fft.Plan3ROf[float32, complex64] // packed real plan (Method FFT, PrecF32)

	mu       sync.Mutex
	kerValid bool         // kernel spectra below are current
	kerF     fft.Spectrum // spectrum of the dilated kernel
	kerFRefl fft.Spectrum // spectrum of the reflected dilated kernel
	imgF     fft.Spectrum // memoized forward image spectrum (round-scoped)
	bwdF     fft.Spectrum // memoized backward gradient spectrum (round-scoped)
	taps     *TapList     // cached nonzero-tap list (Method SparseDirect)
	tapsRefl *TapList     // cached reflected tap list (SparseDirect backward)
}

// NewTransformer builds a float64 transformer for an edge with the given
// geometry. counters may be nil.
func NewTransformer(in, k tensor.Shape, sp tensor.Sparsity, method Method, memoize bool, counters *Counters) *Transformer {
	return NewTransformerPrec(in, k, sp, method, PrecF64, memoize, counters)
}

// NewTransformerPrec builds a transformer with an explicit precision.
// Precision affects the packed FFT path only; Direct and FFTC2C normalize
// to PrecF64.
func NewTransformerPrec(in, k tensor.Shape, sp tensor.Sparsity, method Method, prec Precision, memoize bool, counters *Counters) *Transformer {
	out := in.ValidConv(k, sp)
	if !out.Valid() {
		panic(fmt.Sprintf("conv: kernel %v (sparsity %v) does not fit in image %v", k, sp, in))
	}
	if method != FFT {
		prec = PrecF64
	}
	t := &Transformer{
		in:   in,
		k:    k,
		out:  out,
		sp:   sp,
		m:    transformShape(in, k, sp),
		mth:  method,
		prec: prec,
		mem:  memoize,
		cnt:  counters,
	}
	switch method {
	case Direct, SparseDirect:
	case FFT:
		t.packed = true
		t.sv = fft.PackedVolume(t.m)
		t.initPlans()
	case FFTC2C:
		t.p3 = fft.NewPlan3(t.m)
		t.sv = t.m.Volume()
	default:
		panic(fmt.Sprintf("conv: unknown method %v", method))
	}
	return t
}

// initPlans builds the packed plan for the current precision.
func (t *Transformer) initPlans() {
	if t.prec == PrecF32 {
		t.p3r32 = fft.NewPlan3ROf[float32, complex64](t.m)
		t.p3r = nil
	} else {
		t.p3r = fft.NewPlan3R(t.m)
		t.p3r32 = nil
	}
}

// SetPrecision switches the element type of the packed spectral path. It
// discards cached kernel spectra and memo slots (their layout changes) and
// is a no-op for Direct and FFTC2C transformers. It must not race with the
// transform phases: the engine calls it at compile time, before any round
// runs.
func (t *Transformer) SetPrecision(p Precision) {
	if t.mth != FFT {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.prec == p {
		return
	}
	t.prec = p
	t.initPlans()
	t.kerValid = false
	t.kerF.Release()
	t.kerFRefl.Release()
	t.kerF = fft.Spectrum{}
	t.kerFRefl = fft.Spectrum{}
	t.imgF = fft.Spectrum{}
	t.bwdF = fft.Spectrum{}
}

// SetMethodPrec rebuilds the transformer for a new (method, precision)
// pair — the execution planner's hook for emitting a whole-network plan
// into an already-built graph. Every method-dependent derived field is
// recomputed and every cached artifact whose layout depends on the pair
// (kernel spectra, memo slots, tap lists) is discarded. Like SetPrecision
// it is compile-time only: it must not race with any transform phase.
func (t *Transformer) SetMethodPrec(m Method, p Precision) {
	if m != FFT {
		p = PrecF64 // spatial and c2c paths are float64-only
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mth == m && t.prec == p {
		return
	}
	t.mth = m
	t.prec = p
	t.packed = false
	t.sv = 0
	t.p3, t.p3r, t.p3r32 = nil, nil, nil
	switch m {
	case Direct, SparseDirect:
	case FFT:
		t.packed = true
		t.sv = fft.PackedVolume(t.m)
		t.initPlans()
	case FFTC2C:
		t.p3 = fft.NewPlan3(t.m)
		t.sv = t.m.Volume()
	default:
		panic(fmt.Sprintf("conv: unknown method %v", m))
	}
	t.kerValid = false
	t.kerF.Release()
	t.kerFRefl.Release()
	t.kerF = fft.Spectrum{}
	t.kerFRefl = fft.Spectrum{}
	t.imgF = fft.Spectrum{}
	t.bwdF = fft.Spectrum{}
	t.taps = nil
	t.tapsRefl = nil
}

// Method returns the convolution method in use.
func (t *Transformer) Method() Method { return t.mth }

// Precision returns the spectral element type in use.
func (t *Transformer) Precision() Precision { return t.prec }

// OutShape returns the forward output shape.
func (t *Transformer) OutShape() tensor.Shape { return t.out }

// InShape returns the forward input shape.
func (t *Transformer) InShape() tensor.Shape { return t.in }

// TransformShape returns the common FFT shape (meaningful for FFT methods).
func (t *Transformer) TransformShape() tensor.Shape { return t.m }

// specGet draws a spectrum buffer of the method's length from the pool of
// the method's precision.
func (t *Transformer) specGet() fft.Spectrum {
	if t.prec == PrecF32 {
		return fft.Spec64(mempool.Spectra32.Get(t.sv))
	}
	return fft.Spec128(mempool.Spectra.Get(t.sv))
}

// specInto computes the forward spectrum of src into buf (length t.sv) at
// the transform shape, in the method's layout and precision.
func (t *Transformer) specInto(buf fft.Spectrum, src *tensor.Tensor) {
	switch {
	case t.packed && t.prec == PrecF32:
		t.p3r32.ForwardF64(buf.C64, src)
	case t.packed:
		t.p3r.Forward(buf.C128, src)
	default:
		fft.LoadReal(buf.C128, t.m, src)
		t.p3.Forward(buf.C128)
	}
	t.cnt.addFFT(t.m, t.packed, t.prec == PrecF32)
}

// newSpec allocates a GC-managed spectrum buffer (memo slots live across
// round boundaries with no single release point, so they bypass the pool —
// see SpectrumCache) and fills it with the forward spectrum of src.
func (t *Transformer) newSpec(src *tensor.Tensor) fft.Spectrum {
	var buf fft.Spectrum
	if t.prec == PrecF32 {
		buf = fft.Spec64(make([]complex64, t.sv))
	} else {
		buf = fft.Spec128(make([]complex128, t.sv))
	}
	t.specInto(buf, src)
	return buf
}

// inverseStore inverts spec (consuming the buffer) and stores the
// sub-volume at (ox,oy,oz) into out, with the 1/N normalization.
func (t *Transformer) inverseStore(out *tensor.Tensor, spec fft.Spectrum, ox, oy, oz int) {
	switch {
	case t.packed && t.prec == PrecF32:
		t.p3r32.InverseF64(out, spec.C64, ox, oy, oz)
	case t.packed:
		t.p3r.Inverse(out, spec.C128, ox, oy, oz)
	default:
		t.p3.Inverse(spec.C128)
		fft.StoreReal(out, spec.C128, t.m, ox, oy, oz)
	}
	t.cnt.addInverse(t.m, t.packed, t.prec == PrecF32)
}

// reflectInto applies the conjugate-reflection phase pass for a signal of
// the given support, in the method's spectrum layout and precision.
func (t *Transformer) reflectInto(dst, src fft.Spectrum, support tensor.Shape) {
	switch {
	case t.packed && t.prec == PrecF32:
		reflectSpectrumPackedInto(dst.C64, src.C64, t.m, support)
	case t.packed:
		reflectSpectrumPackedInto(dst.C128, src.C128, t.m, support)
	default:
		reflectSpectrumInto(dst.C128, src.C128, t.m, support)
	}
	t.cnt.addReflect(t.m)
}

// kernelSpectra returns the (possibly cached) spectra of the dilated kernel
// and its reflection, computing them if the update invalidated them. The
// buffers are recomputed in place across invalidations: the kernel changes
// every round, so releasing and reallocating two transform-sized buffers
// per edge per round was pure GC churn on the hot path. In-place reuse is
// safe under the FORCE discipline that already protects invalidation — an
// edge's update (which invalidates) always runs before the edge's next
// forward pass reads the spectra.
func (t *Transformer) kernelSpectra(ker *tensor.Tensor) (kf, kfr fft.Spectrum) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.kerValid {
		if t.kerF.IsNil() {
			// Pool-backed so PeakLiveBytes covers the kernel-spectra
			// working set (the plan byte model's 2·f·f′ term). The
			// buffers stay checked out across rounds — recomputed in
			// place on invalidation — and return to the pool only when
			// the layout changes or the engine closes.
			if t.prec == PrecF32 {
				t.kerF = fft.Spec64(mempool.Spectra32.Get(t.sv))
				t.kerFRefl = fft.Spec64(mempool.Spectra32.Get(t.sv))
			} else {
				t.kerF = fft.Spec128(mempool.Spectra.Get(t.sv))
				t.kerFRefl = fft.Spec128(mempool.Spectra.Get(t.sv))
			}
		}
		d := ker.Dilate(t.sp)
		t.specInto(t.kerF, d)
		t.reflectInto(t.kerFRefl, t.kerF, d.S)
		t.kerValid = true
	}
	return t.kerF, t.kerFRefl
}

// ReleaseKernelSpectra returns the pooled kernel-spectra buffers and marks
// them stale. The engine calls it on Close so a dead engine's transformers
// do not inflate the pools' live-byte baseline (one live engine per graph
// is the documented rule, so the next Compile/round recomputes from
// scratch). Safe to call repeatedly; a transformer that never computed
// spectra releases nothing.
func (t *Transformer) ReleaseKernelSpectra() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.kerValid = false
	t.kerF.Release()
	t.kerFRefl.Release()
	t.kerF = fft.Spectrum{}
	t.kerFRefl = fft.Spectrum{}
}

// InvalidateKernel marks the cached kernel spectra stale; the update task
// calls this after changing the weights. The buffers are retained for
// in-place recomputation; tap lists are rebuilt from scratch (the set of
// nonzero coordinates itself may change).
func (t *Transformer) InvalidateKernel() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.kerValid = false
	t.taps = nil
	t.tapsRefl = nil
}

// tapsFor returns the (possibly cached) nonzero-tap list of ker, and
// lazily its reflected counterpart when refl is true. Cached under the
// same invalidation discipline as the kernel spectra: the update task's
// InvalidateKernel always runs before the next pass reads the taps.
func (t *Transformer) tapsFor(ker *tensor.Tensor, refl bool) *TapList {
	t.mu.Lock()
	defer t.mu.Unlock()
	if refl {
		if t.tapsRefl == nil {
			t.tapsRefl = NewTapList(ker.Reflect())
		}
		return t.tapsRefl
	}
	if t.taps == nil {
		t.taps = NewTapList(ker)
	}
	return t.taps
}

// Forward computes the edge's forward pass: the valid sparse convolution of
// img with ker. sc, when non-nil, supplies the node-shared image spectrum.
func (t *Transformer) Forward(img, ker *tensor.Tensor, sc *SpectrumCache) *tensor.Tensor {
	return t.forward(img, ker, sc, t.mem)
}

// ForwardInfer is Forward without the memoization side effect. Concurrent
// forward-only rounds share one Transformer, and the imgF memo slot is
// round-scoped *training* state: if an inference pass overwrote it, a lazy
// update task from the surrounding training rounds could consume the wrong
// image spectrum. Inference therefore never touches the memo slots (it has
// no update to subsidize anyway).
func (t *Transformer) ForwardInfer(img, ker *tensor.Tensor, sc *SpectrumCache) *tensor.Tensor {
	return t.forward(img, ker, sc, false)
}

// ForwardInferBatch is ForwardInfer over the K volumes of one fused
// inference round: the kernel spectrum is fetched (and, after an
// invalidation, recomputed) once and streams through the K pointwise
// products and inverse transforms, instead of being re-read per volume —
// the ZNNi batching observation that wins CPU inference throughput. sc,
// when non-nil, must be a batch cache holding the same K images. Like
// ForwardInfer it never touches the memo slots.
func (t *Transformer) ForwardInferBatch(imgs []*tensor.Tensor, ker *tensor.Tensor, sc *SpectrumCache) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(imgs))
	if !t.mth.IsFFT() {
		// Spatial methods have no spectra to share; SparseDirect still
		// amortizes its tap list, cached on first use across the K volumes.
		for i, img := range imgs {
			outs[i] = t.forward(img, ker, nil, false)
		}
		return outs
	}
	if ker.S != t.k {
		panic(fmt.Sprintf("conv: kernel %v, want %v", ker.S, t.k))
	}
	imgFs := t.batchSpectra(imgs, sc)
	kf, _ := t.kernelSpectra(ker)
	ox, oy, oz := t.sp.X*(t.k.X-1), t.sp.Y*(t.k.Y-1), t.sp.Z*(t.k.Z-1)
	for i := range imgs {
		prod := t.specGet()
		fft.MulSpecInto(prod, imgFs[i], kf)
		t.cnt.addMul(t.m, t.packed)
		out := tensor.New(t.out)
		t.inverseStore(out, prod, ox, oy, oz)
		prod.Release()
		outs[i] = out
	}
	return outs
}

// ForwardProductInferBatch is ForwardProductInfer over the K volumes of one
// fused inference round: one kernel-spectrum fetch feeds K pointwise
// products (each into a pooled buffer whose ownership passes to the caller,
// typically one wsum.ComplexSum per volume). The per-volume inverse
// transforms happen at the accumulating node (FinishForward), one per
// (node, volume).
func (t *Transformer) ForwardProductInferBatch(imgs []*tensor.Tensor, ker *tensor.Tensor, sc *SpectrumCache) []fft.Spectrum {
	if !t.mth.IsFFT() {
		panic("conv: ForwardProductInferBatch on a direct-method transformer")
	}
	imgFs := t.batchSpectra(imgs, sc)
	kf, _ := t.kernelSpectra(ker)
	prods := make([]fft.Spectrum, len(imgs))
	for i := range imgs {
		prod := t.specGet()
		fft.MulSpecInto(prod, imgFs[i], kf)
		t.cnt.addMul(t.m, t.packed)
		prods[i] = prod
	}
	return prods
}

// batchSpectra returns the K forward image spectra, shared through the
// batch cache when one is supplied.
func (t *Transformer) batchSpectra(imgs []*tensor.Tensor, sc *SpectrumCache) []fft.Spectrum {
	for _, img := range imgs {
		if img.S != t.in {
			panic(fmt.Sprintf("conv: forward image %v, want %v", img.S, t.in))
		}
	}
	if sc != nil {
		return sc.GetBatch(t.m, t.packed, t.prec, t.cnt)
	}
	specs := make([]fft.Spectrum, len(imgs))
	for i, img := range imgs {
		specs[i] = t.newSpec(img)
	}
	return specs
}

func (t *Transformer) forward(img, ker *tensor.Tensor, sc *SpectrumCache, memo bool) *tensor.Tensor {
	if img.S != t.in {
		panic(fmt.Sprintf("conv: forward image %v, want %v", img.S, t.in))
	}
	if ker.S != t.k {
		panic(fmt.Sprintf("conv: kernel %v, want %v", ker.S, t.k))
	}
	switch t.mth {
	case Direct:
		out := tensor.New(t.out)
		ValidDirectInto(out, img, ker, t.sp)
		t.cnt.addDirect(directConvFlops(t.out, t.k))
		return out
	case SparseDirect:
		tl := t.tapsFor(ker, false)
		out := tensor.New(t.out)
		ValidSparseDirectInto(out, img, tl, t.sp)
		t.cnt.addDirect(sparseConvFlops(t.out, tl))
		return out
	}
	var imgF fft.Spectrum
	if sc != nil {
		imgF = sc.Get(t.m, t.packed, t.prec, t.cnt)
	} else {
		imgF = t.newSpec(img)
	}
	kf, _ := t.kernelSpectra(ker)
	prod := t.specGet()
	fft.MulSpecInto(prod, imgF, kf)
	t.cnt.addMul(t.m, t.packed)
	out := tensor.New(t.out)
	t.inverseStore(out, prod, t.sp.X*(t.k.X-1), t.sp.Y*(t.k.Y-1), t.sp.Z*(t.k.Z-1))
	prod.Release()
	if memo {
		t.mu.Lock()
		t.imgF = imgF
		t.mu.Unlock()
	}
	return out
}

// Backward computes the edge's backward pass: the full convolution of the
// backward image bwd (shape n′) with the reflected kernel, yielding shape
// n. sc, when non-nil, supplies the spectrum of bwd shared across the
// in-edges of the node that produced it.
func (t *Transformer) Backward(bwd, ker *tensor.Tensor, sc *SpectrumCache) *tensor.Tensor {
	if bwd.S != t.out {
		panic(fmt.Sprintf("conv: backward image %v, want %v", bwd.S, t.out))
	}
	switch t.mth {
	case Direct:
		out := tensor.New(t.in)
		FullDirectInto(out, bwd, ker.Reflect(), t.sp)
		t.cnt.addDirect(directConvFlops(t.out, t.k))
		return out
	case SparseDirect:
		tl := t.tapsFor(ker, true)
		out := tensor.New(t.in)
		FullSparseDirectInto(out, bwd, tl, t.sp)
		t.cnt.addDirect(sparseConvFlops(t.out, tl))
		return out
	}
	var bwdF fft.Spectrum
	if sc != nil {
		bwdF = sc.Get(t.m, t.packed, t.prec, t.cnt)
	} else {
		bwdF = t.newSpec(bwd)
	}
	_, kfr := t.kernelSpectra(ker)
	prod := t.specGet()
	fft.MulSpecInto(prod, bwdF, kfr)
	t.cnt.addMul(t.m, t.packed)
	out := tensor.New(t.in)
	t.inverseStore(out, prod, 0, 0, 0)
	prod.Release()
	if t.mem {
		t.mu.Lock()
		t.bwdF = bwdF
		t.mu.Unlock()
	}
	return out
}

// KernelGrad computes the gradient of the loss with respect to the kernel:
// the valid convolution of the reflected forward image with the backward
// image, subsampled at the sparsity stride. With memoization enabled and
// both phase spectra retained, it costs one spectrum reflection, one
// pointwise product and one inverse transform (Table II, memoized update).
// The memo slots are consumed: a second call recomputes from the images.
func (t *Transformer) KernelGrad(img, bwd *tensor.Tensor) *tensor.Tensor {
	if img.S != t.in || bwd.S != t.out {
		panic(fmt.Sprintf("conv: kernel grad shapes img %v bwd %v, want %v and %v",
			img.S, bwd.S, t.in, t.out))
	}
	if !t.mth.IsFFT() {
		// SparseDirect intentionally computes the *dense* gradient: a zero
		// tap can receive a nonzero gradient — sparse execution is a
		// strategy for the current weights, not a pruning mask on updates.
		g := KernelGradDirect(img, bwd, t.k, t.sp)
		t.cnt.addDirect(directConvFlops(t.out, t.k))
		return g
	}
	t.mu.Lock()
	imgF, bwdF := t.imgF, t.bwdF
	t.imgF, t.bwdF = fft.Spectrum{}, fft.Spectrum{}
	t.mu.Unlock()
	if imgF.IsNil() {
		imgF = t.newSpec(img)
	}
	if bwdF.IsNil() {
		bwdF = t.newSpec(bwd)
	}
	// F(reflect(img)) from the memoized F(img) via the phase trick.
	prod := t.specGet()
	t.reflectInto(prod, imgF, t.in)
	fft.MulSpecInto(prod, prod, bwdF)
	t.cnt.addMul(t.m, t.packed)
	// Full-convolution values at offsets (n′−1) + s·a, a = 0..k−1.
	full := tensor.New(tensor.Shape{
		X: t.sp.X*(t.k.X-1) + 1,
		Y: t.sp.Y*(t.k.Y-1) + 1,
		Z: t.sp.Z*(t.k.Z-1) + 1,
	})
	t.inverseStore(full, prod, t.out.X-1, t.out.Y-1, t.out.Z-1)
	prod.Release()
	return full.Subsample(0, 0, 0, t.sp, t.k)
}

// HasMemoizedSpectra reports whether both round-scoped memo slots are
// populated (used by tests to verify the memoization lifecycle).
func (t *Transformer) HasMemoizedSpectra() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.imgF.IsNil() && !t.bwdF.IsNil()
}

// --- Spectral accumulation (node-level FFT-domain summation) -------------
//
// When every edge converging on a node uses the same FFT method with the
// same transform shape, kernel shape and sparsity, the node can sum the
// edges' FFT-domain products and run a single inverse transform: the
// execution model the paper's Table II costs assume (f′ inverse transforms
// per layer forward pass instead of f′·f). The four methods below compute
// the per-edge products and the per-node finishers.

// SpectralCompatible reports whether two transformers may share a node's
// spectral sum: same FFT method and precision (so the buffers have the same
// layout, length and element type), transform shape, kernel shape and
// sparsity (the crop offsets must agree).
func (t *Transformer) SpectralCompatible(o *Transformer) bool {
	return t.mth.IsFFT() && t.mth == o.mth && t.prec == o.prec &&
		t.m == o.m && t.k == o.k && t.sp == o.sp && t.out == o.out && t.in == o.in
}

// ForwardProduct computes the edge's FFT-domain forward product
// F(img)·F(kernel) into a pooled buffer (ownership passes to the caller,
// typically a wsum.ComplexSum). Memoization records the image spectrum
// exactly as Forward does.
func (t *Transformer) ForwardProduct(img, ker *tensor.Tensor, sc *SpectrumCache) fft.Spectrum {
	return t.forwardProduct(img, ker, sc, t.mem)
}

// ForwardProductInfer is ForwardProduct without the memoization side effect
// (see ForwardInfer), for forward-only rounds running concurrently over a
// shared Transformer.
func (t *Transformer) ForwardProductInfer(img, ker *tensor.Tensor, sc *SpectrumCache) fft.Spectrum {
	return t.forwardProduct(img, ker, sc, false)
}

func (t *Transformer) forwardProduct(img, ker *tensor.Tensor, sc *SpectrumCache, memo bool) fft.Spectrum {
	if !t.mth.IsFFT() {
		panic("conv: ForwardProduct on a direct-method transformer")
	}
	if img.S != t.in {
		panic(fmt.Sprintf("conv: forward image %v, want %v", img.S, t.in))
	}
	var imgF fft.Spectrum
	if sc != nil {
		imgF = sc.Get(t.m, t.packed, t.prec, t.cnt)
	} else {
		imgF = t.newSpec(img)
	}
	kf, _ := t.kernelSpectra(ker)
	prod := t.specGet()
	fft.MulSpecInto(prod, imgF, kf)
	t.cnt.addMul(t.m, t.packed)
	if memo {
		t.mu.Lock()
		t.imgF = imgF
		t.mu.Unlock()
	}
	return prod
}

// FinishForward inverts an accumulated forward spectrum, crops the valid
// region, and releases the buffer to the pool.
func (t *Transformer) FinishForward(spec fft.Spectrum) *tensor.Tensor {
	out := tensor.New(t.out)
	t.inverseStore(out, spec,
		t.sp.X*(t.k.X-1), t.sp.Y*(t.k.Y-1), t.sp.Z*(t.k.Z-1))
	spec.Release()
	return out
}

// BackwardProduct computes the edge's FFT-domain backward product
// F(bwd)·F(reflected kernel) into a pooled buffer.
func (t *Transformer) BackwardProduct(bwd, ker *tensor.Tensor, sc *SpectrumCache) fft.Spectrum {
	if !t.mth.IsFFT() {
		panic("conv: BackwardProduct on a direct-method transformer")
	}
	if bwd.S != t.out {
		panic(fmt.Sprintf("conv: backward image %v, want %v", bwd.S, t.out))
	}
	var bwdF fft.Spectrum
	if sc != nil {
		bwdF = sc.Get(t.m, t.packed, t.prec, t.cnt)
	} else {
		bwdF = t.newSpec(bwd)
	}
	_, kfr := t.kernelSpectra(ker)
	prod := t.specGet()
	fft.MulSpecInto(prod, bwdF, kfr)
	t.cnt.addMul(t.m, t.packed)
	if t.mem {
		t.mu.Lock()
		t.bwdF = bwdF
		t.mu.Unlock()
	}
	return prod
}

// FinishBackward inverts an accumulated backward spectrum, crops the full
// region (the input shape), and releases the buffer.
func (t *Transformer) FinishBackward(spec fft.Spectrum) *tensor.Tensor {
	out := tensor.New(t.in)
	t.inverseStore(out, spec, 0, 0, 0)
	spec.Release()
	return out
}
