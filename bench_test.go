// Benchmarks mirroring the paper's tables and figures, one testing.B per
// experiment (scaled to finish quickly; cmd/znn-bench runs the full
// parameter sweeps and prints the tables).
//
//	go test -bench=. -benchmem
package znn_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"znn/internal/baseline"
	"znn/internal/benchsuite"
	"znn/internal/conv"
	"znn/internal/fft"
	"znn/internal/graph"
	"znn/internal/mempool"
	"znn/internal/model"
	"znn/internal/net"
	"znn/internal/ops"
	"znn/internal/pqueue"
	"znn/internal/sched"
	"znn/internal/tensor"
	"znn/internal/train"
	"znn/internal/wsum"
)

// --- Table I: nonlinear layer primitives --------------------------------

func BenchmarkTable1MaxPool(b *testing.B) {
	img := tensor.RandomUniform(rand.New(rand.NewSource(1)), tensor.Cube(32), -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ops.MaxPoolForward(img, tensor.Cube(2))
	}
}

func BenchmarkTable1MaxFilterHeap(b *testing.B) {
	img := tensor.RandomUniform(rand.New(rand.NewSource(1)), tensor.Cube(32), -1, 1)
	for i := 0; i < b.N; i++ {
		ops.MaxFilterForward(img, tensor.Cube(2), ops.FilterHeap, nil)
	}
}

func BenchmarkTable1MaxFilterDeque(b *testing.B) {
	img := tensor.RandomUniform(rand.New(rand.NewSource(1)), tensor.Cube(32), -1, 1)
	for i := 0; i < b.N; i++ {
		ops.MaxFilterForward(img, tensor.Cube(2), ops.FilterDeque, nil)
	}
}

func BenchmarkTable1Transfer(b *testing.B) {
	img := tensor.RandomUniform(rand.New(rand.NewSource(1)), tensor.Cube(32), -1, 1)
	for i := 0; i < b.N; i++ {
		ops.TransferForward(ops.ReLU{}, img, 0.1)
	}
}

// --- Table II: direct vs FFT vs memoized convolution --------------------

func benchConvPhases(b *testing.B, method conv.Method, memoize bool) {
	rng := rand.New(rand.NewSource(2))
	img := tensor.RandomUniform(rng, tensor.Cube(20), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(5), -0.5, 0.5)
	bwd := tensor.RandomUniform(rng, tensor.Cube(16), -1, 1)
	tr := conv.NewTransformer(img.S, ker.S, tensor.Dense(), method, memoize, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(img, ker, nil)
		tr.Backward(bwd, ker, nil)
		tr.KernelGrad(img, bwd)
		tr.InvalidateKernel()
	}
}

func BenchmarkTable2Direct(b *testing.B)  { benchConvPhases(b, conv.Direct, false) }
func BenchmarkTable2FFT(b *testing.B)     { benchConvPhases(b, conv.FFT, false) }
func BenchmarkTable2FFTMemo(b *testing.B) { benchConvPhases(b, conv.FFT, true) }

// --- Fig. 4: analytic speedup curves ------------------------------------

func BenchmarkFig4Curves(b *testing.B) {
	widths := []int{1, 5, 10, 20, 40, 80, 120}
	for i := 0; i < b.N; i++ {
		for _, p := range []int{8, 18, 40, 60, 120} {
			model.Fig4Curve(model.FFTMemo, p, 8, widths)
		}
	}
}

// --- Fig. 5–7: parallel training rounds (speedup numerator/denominator) --

func benchTrainingRound(b *testing.B, workers int, policy sched.Policy) {
	nw, err := net.Build(net.MustParse("C3-Trelu-M2-C3-Trelu-M2-C3-Trelu-C3-Trelu"),
		net.BuildOptions{
			Width: 4, OutWidth: 4, OutputExtent: 8,
			Tuner: &conv.Autotuner{Policy: conv.TuneForceDirect}, Seed: 3,
		})
	if err != nil {
		b.Fatal(err)
	}
	en, err := train.NewEngine(nw.G, train.Config{Workers: workers, Policy: policy, Eta: 1e-6})
	if err != nil {
		b.Fatal(err)
	}
	defer en.Close()
	rng := rand.New(rand.NewSource(4))
	in := []*tensor.Tensor{tensor.RandomUniform(rng, nw.InputShape(), -1, 1)}
	des := make([]*tensor.Tensor, 4)
	for i := range des {
		des[i] = tensor.RandomUniform(rng, nw.OutputShape(), 0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cin := make([]*tensor.Tensor, len(in))
		for j, t := range in {
			cin[j] = t.Clone()
		}
		cdes := make([]*tensor.Tensor, len(des))
		for j, t := range des {
			cdes[j] = t.Clone()
		}
		if _, err := en.Round(cin, cdes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Round1Worker(b *testing.B)  { benchTrainingRound(b, 1, sched.PolicyPriority) }
func BenchmarkFig5Round2Workers(b *testing.B) { benchTrainingRound(b, 2, sched.PolicyPriority) }

func BenchmarkFig7SerialBaseline(b *testing.B) {
	nw, err := net.Build(net.MustParse("C3-Trelu-M2-C3-Trelu-M2-C3-Trelu-C3-Trelu"),
		net.BuildOptions{
			Width: 4, OutWidth: 4, OutputExtent: 8,
			Tuner: &conv.Autotuner{Policy: conv.TuneForceDirect}, Seed: 3,
		})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	in := []*tensor.Tensor{tensor.RandomUniform(rng, nw.InputShape(), -1, 1)}
	des := make([]*tensor.Tensor, 4)
	for i := range des {
		des[i] = tensor.RandomUniform(rng, nw.OutputShape(), 0, 1)
	}
	opt := graph.UpdateOpts{Eta: 1e-6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.RoundSerial(in, des, ops.SquaredLoss{}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 8/9: ZNN vs layerwise-direct baseline -------------------------

func benchGPUComparison(b *testing.B, znnSide bool, kernel int) {
	spec := fmt.Sprintf("C%d-Trelu-P2-C%d-Trelu-C%d-Trelu", kernel, kernel, kernel)
	tune := conv.TuneForceDirect
	memo := false
	if znnSide {
		tune = conv.TuneForceFFT
		memo = true
	}
	nw, err := net.Build(net.MustParse(spec), net.BuildOptions{
		Width: 4, OutWidth: 4, Dims: 2, OutputExtent: 2,
		Tuner: &conv.Autotuner{Policy: tune}, Memoize: memo, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	in := []*tensor.Tensor{tensor.RandomUniform(rng, nw.InputShape(), -1, 1)}
	des := make([]*tensor.Tensor, 4)
	for i := range des {
		des[i] = tensor.RandomUniform(rng, nw.OutputShape(), 0, 1)
	}
	opt := graph.UpdateOpts{Eta: 1e-6}
	if znnSide {
		en, err := train.NewEngine(nw.G, train.Config{Workers: 2, Eta: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		defer en.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cin := []*tensor.Tensor{in[0].Clone()}
			cdes := make([]*tensor.Tensor, len(des))
			for j, t := range des {
				cdes[j] = t.Clone()
			}
			if _, err := en.Round(cin, cdes); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	x, err := baseline.NewLayerwiseExecutor(nw, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Round(in, des, ops.SquaredLoss{}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8ZNNKernel6(b *testing.B)       { benchGPUComparison(b, true, 6) }
func BenchmarkFig8BaselineKernel6(b *testing.B)  { benchGPUComparison(b, false, 6) }
func BenchmarkFig8ZNNKernel12(b *testing.B)      { benchGPUComparison(b, true, 12) }
func BenchmarkFig8BaselineKernel12(b *testing.B) { benchGPUComparison(b, false, 12) }

// --- E11: wait-free vs locked summation ---------------------------------

func benchSum(b *testing.B, waitFree bool, adders int) {
	shape := tensor.Cube(32)
	rng := rand.New(rand.NewSource(7))
	inputs := make([]*tensor.Tensor, adders)
	for i := range inputs {
		inputs[i] = tensor.RandomUniform(rng, shape, -1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		if waitFree {
			s := wsum.New(adders)
			for j := 0; j < adders; j++ {
				wg.Add(1)
				go func(v *tensor.Tensor) {
					defer wg.Done()
					s.Add(v)
				}(inputs[j].Clone())
			}
		} else {
			s := wsum.NewLocked(adders)
			for j := 0; j < adders; j++ {
				wg.Add(1)
				go func(v *tensor.Tensor) {
					defer wg.Done()
					s.Add(v)
				}(inputs[j].Clone())
			}
		}
		wg.Wait()
	}
}

func BenchmarkWaitFreeSum8(b *testing.B)  { benchSum(b, true, 8) }
func BenchmarkLockedSum8(b *testing.B)    { benchSum(b, false, 8) }
func BenchmarkWaitFreeSum32(b *testing.B) { benchSum(b, true, 32) }
func BenchmarkLockedSum32(b *testing.B)   { benchSum(b, false, 32) }

// --- E12: heap-of-lists vs binary heap ----------------------------------

func benchQueue(b *testing.B, q pqueue.Queue, distinct int) {
	const tasks = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < tasks; j++ {
			q.Push(int64(j%distinct), j)
		}
		for j := 0; j < tasks; j++ {
			q.Pop()
		}
	}
}

func BenchmarkPQueueHeapOfListsK4(b *testing.B) { benchQueue(b, pqueue.NewHeapOfLists(), 4) }
func BenchmarkPQueueBinaryHeapK4(b *testing.B)  { benchQueue(b, pqueue.NewBinaryHeap(), 4) }
func BenchmarkPQueueHeapOfListsK1024(b *testing.B) {
	benchQueue(b, pqueue.NewHeapOfLists(), 1024)
}
func BenchmarkPQueueBinaryHeapK1024(b *testing.B) { benchQueue(b, pqueue.NewBinaryHeap(), 1024) }

// --- E13: pooled allocation ---------------------------------------------

func BenchmarkMempoolGetPut(b *testing.B) {
	var p mempool.Float64Pool
	p.Put(p.Get(1 << 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := p.Get(1 << 16)
		buf[0] = 1
		p.Put(buf)
	}
}

func BenchmarkMakeBaseline(b *testing.B) {
	var sink []float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]float64, 1<<16)
		buf[0] = 1
		sink = buf
	}
	_ = sink
}

// --- E14: scheduler strategies ------------------------------------------

func BenchmarkSchedulerPriority(b *testing.B) { benchTrainingRound(b, 2, sched.PolicyPriority) }
func BenchmarkSchedulerFIFO(b *testing.B)     { benchTrainingRound(b, 2, sched.PolicyFIFO) }
func BenchmarkSchedulerLIFO(b *testing.B)     { benchTrainingRound(b, 2, sched.PolicyLIFO) }
func BenchmarkSchedulerSteal(b *testing.B)    { benchTrainingRound(b, 2, sched.PolicySteal) }

// --- E15: memoization ----------------------------------------------------

func benchMemoization(b *testing.B, memoize bool) {
	nw, err := net.Build(net.MustParse("C5-Trelu-C5-Trelu"), net.BuildOptions{
		Width: 4, OutWidth: 4, Dims: 2, OutputExtent: 16,
		Tuner: &conv.Autotuner{Policy: conv.TuneForceFFT}, Memoize: memoize, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	en, err := train.NewEngine(nw.G, train.Config{Workers: 2, Eta: 1e-6})
	if err != nil {
		b.Fatal(err)
	}
	defer en.Close()
	rng := rand.New(rand.NewSource(9))
	in := []*tensor.Tensor{tensor.RandomUniform(rng, nw.InputShape(), -1, 1)}
	des := make([]*tensor.Tensor, 4)
	for i := range des {
		des[i] = tensor.RandomUniform(rng, nw.OutputShape(), 0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cin := []*tensor.Tensor{in[0].Clone()}
		cdes := make([]*tensor.Tensor, len(des))
		for j, t := range des {
			cdes[j] = t.Clone()
		}
		if _, err := en.Round(cin, cdes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoizationOff(b *testing.B) { benchMemoization(b, false) }
func BenchmarkMemoizationOn(b *testing.B)  { benchMemoization(b, true) }

// --- FFT primitives -------------------------------------------------------

// BenchmarkFFT3 vs BenchmarkFFT3R is the packed-pipeline A/B: one full
// load→forward→inverse→store cycle of a real volume at a representative
// transform shape (30³ is GoodShape of a 24³ image convolved with a 5³
// kernel). The r2c/c2r path computes and stores only the (X/2+1)·Y·Z
// Hermitian-packed coefficients.

func BenchmarkFFT3(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	img := tensor.RandomUniform(rng, tensor.Cube(30), -1, 1)
	m := img.S
	p := fft.NewPlan3(m)
	buf := make([]complex128, m.Volume())
	out := tensor.New(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.LoadReal(buf, m, img)
		p.Forward(buf)
		p.Inverse(buf)
		fft.StoreReal(out, buf, m, 0, 0, 0)
	}
}

func BenchmarkFFT3R(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	img := tensor.RandomUniform(rng, tensor.Cube(30), -1, 1)
	p := fft.NewPlan3R(img.S)
	buf := make([]complex128, p.PackedLen())
	out := tensor.New(img.S)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(buf, img)
		p.Inverse(out, buf, 0, 0, 0)
	}
}

// --- Spectral-mode training: packed vs full-complex spectra ---------------

func benchSpectralRound(b *testing.B, policy conv.TunePolicy) {
	nw, err := net.Build(net.MustParse("C5-Trelu-C5-Trelu"), net.BuildOptions{
		Width: 4, OutWidth: 4, Dims: 2, OutputExtent: 16,
		Tuner: &conv.Autotuner{Policy: policy}, Memoize: true, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	en, err := train.NewEngine(nw.G, train.Config{Workers: 2, Eta: 1e-6})
	if err != nil {
		b.Fatal(err)
	}
	defer en.Close()
	rng := rand.New(rand.NewSource(9))
	in := []*tensor.Tensor{tensor.RandomUniform(rng, nw.InputShape(), -1, 1)}
	des := make([]*tensor.Tensor, 4)
	for i := range des {
		des[i] = tensor.RandomUniform(rng, nw.OutputShape(), 0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cin := []*tensor.Tensor{in[0].Clone()}
		cdes := make([]*tensor.Tensor, len(des))
		for j, t := range des {
			cdes[j] = t.Clone()
		}
		if _, err := en.Round(cin, cdes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectralRoundPacked(b *testing.B) { benchSpectralRound(b, conv.TuneForceFFT) }
func BenchmarkSpectralRoundC2C(b *testing.B)    { benchSpectralRound(b, conv.TuneForceFFTC2C) }

// --- Precision A/B: float64 vs float32 spectral path ----------------------

// BenchmarkFFT3R96 vs BenchmarkFFT3R96F32 is the per-transform precision
// A/B at the 96³ class: one packed forward+inverse cycle. In pure scalar Go
// the butterflies are compute-bound (float32 and float64 scalar multiplies
// run at the same rate), so the isolated transform is roughly precision-
// neutral; the float32 win appears at pipeline level, where spectra, image
// conversions, pool zeroing and pointwise products are bandwidth-bound —
// see BenchmarkSpectralRound96*. Harnesses live in internal/benchsuite,
// shared with `znn-bench -json` so the trajectory files measure exactly
// these workloads.

func BenchmarkFFT3R96(b *testing.B)    { benchsuite.FFT3R[float64, complex128](b, 96) }
func BenchmarkFFT3R96F32(b *testing.B) { benchsuite.FFT3R[float32, complex64](b, 96) }

func BenchmarkSpectralRound96F64(b *testing.B) { benchsuite.SpectralRound96(b, conv.PrecF64, 2) }
func BenchmarkSpectralRound96F32(b *testing.B) { benchsuite.SpectralRound96(b, conv.PrecF32, 2) }

// BenchmarkFFT3R_Odd exposes the odd-length r2c fallback cost: odd X-lines
// run a full-length complex transform and keep only the packed half, so
// they gain the memory and pointwise savings but not the X-pass flop
// halving. Each odd size is paired with its even 5-smooth neighbour so the
// gap is visible in one run (and regressions in either path are caught).
// Sizes share the benchsuite harness with `znn-bench -json`.
func BenchmarkFFT3R_Odd(b *testing.B) {
	for _, n := range []int{15, 16, 27, 30, 45, 48} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			benchsuite.FFT3R[float64, complex128](b, n)
		})
	}
}

func BenchmarkFFTConvValid(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	img := tensor.RandomUniform(rng, tensor.Cube(24), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(5), -0.5, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.ValidFFT(img, ker, tensor.Dense())
	}
}

func BenchmarkDirectConvValid(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	img := tensor.RandomUniform(rng, tensor.Cube(24), -1, 1)
	ker := tensor.RandomUniform(rng, tensor.Cube(5), -0.5, 0.5)
	out := tensor.New(img.S.ValidConv(ker.S, tensor.Dense()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.ValidDirectInto(out, img, ker, tensor.Dense())
	}
}
